#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include <set>

#include "baselines/sla_policy.hpp"
#include "baselines/uniform_policy.hpp"
#include "common/rng.hpp"
#include "power/policies_change_based.hpp"
#include "power/policies_state_based.hpp"
#include "power/policies_thermal.hpp"
#include "power/policy_registry.hpp"

namespace pcap::power {
namespace {

/// Context with three jobs of distinct power profiles:
///   job 0: nodes {0,1},   P = 600 (hot),   prev 590   (slow riser)
///   job 1: nodes {2},     P = 200 (cool),  prev 100   (fast riser)
///   job 2: nodes {3,4,5}, P = 450 (mid),   prev 445
/// Saving per node is 20 W. P - P_L = `gap`.
PolicyContext three_job_ctx(double gap = 30.0) {
  PolicyContext ctx;
  ctx.p_low = Watts{1000.0};
  ctx.system_power = Watts{1000.0 + gap};
  const double node_power[] = {300.0, 300.0, 200.0, 150.0, 150.0, 150.0};
  const double node_prev[] = {295.0, 295.0, 100.0, 148.0, 148.0, 149.0};
  for (int i = 0; i < 6; ++i) {
    NodeView nv;
    nv.id = static_cast<hw::NodeId>(i);
    nv.level = 9;
    nv.highest_level = 9;
    nv.at_lowest = false;
    nv.busy = true;
    nv.power = Watts{node_power[i]};
    nv.power_prev = Watts{node_prev[i]};
    nv.power_one_level_down = nv.power - Watts{20.0};
    ctx.nodes.push_back(nv);
  }
  ctx.index_nodes();
  const std::vector<std::vector<hw::NodeId>> groups = {{0, 1}, {2}, {3, 4, 5}};
  for (std::size_t j = 0; j < groups.size(); ++j) {
    JobView jv;
    jv.id = j;
    jv.nodes = groups[j];
    for (const hw::NodeId id : groups[j]) {
      jv.power += ctx.node(id)->power;
      jv.power_prev += ctx.node(id)->power_prev;
      jv.saving_one_level += Watts{20.0};
    }
    ctx.jobs.push_back(jv);
  }
  return ctx;
}

TEST(PolicyContext, RequiredSavingClampsAtZero) {
  PolicyContext ctx;
  ctx.system_power = Watts{100.0};
  ctx.p_low = Watts{200.0};
  EXPECT_EQ(ctx.required_saving(), Watts{0.0});
  ctx.system_power = Watts{250.0};
  EXPECT_EQ(ctx.required_saving(), Watts{50.0});
}

TEST(PolicyContext, NodeLookup) {
  const auto ctx = three_job_ctx();
  ASSERT_NE(ctx.node(3), nullptr);
  EXPECT_EQ(ctx.node(3)->id, 3u);
  EXPECT_EQ(ctx.node(99), nullptr);
}

TEST(JobView, RateOfIncrease) {
  const auto ctx = three_job_ctx();
  EXPECT_NEAR(ctx.jobs[1].rate_of_increase(), (200.0 - 100.0) / 100.0, 1e-9);
  JobView no_history;
  no_history.power = Watts{100.0};
  EXPECT_DOUBLE_EQ(no_history.rate_of_increase(), 0.0);
}

TEST(Mpc, PicksTheMostPowerConsumingJob) {
  MostPowerConsumingJob p;
  const auto targets = p.select(three_job_ctx());
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{0, 1}));  // job 0: 600 W
}

TEST(Mpc, SkipsJobsWithNoThrottleableNodes) {
  auto ctx = three_job_ctx();
  // Floor job 0's nodes: MPC must fall through to job 2 (450 W).
  ctx.nodes[0].at_lowest = true;
  ctx.nodes[1].at_lowest = true;
  MostPowerConsumingJob p;
  const auto targets = p.select(ctx);
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{3, 4, 5}));
}

TEST(Mpc, EmptyWhenNoJobs) {
  PolicyContext ctx;
  ctx.index_nodes();
  MostPowerConsumingJob p;
  EXPECT_TRUE(p.select(ctx).empty());
}

TEST(MpcC, StopsOnceSavingCoversGap) {
  MostPowerConsumingCollection p;
  // Gap 30 W: job 0 alone saves 40 W >= 30 — only its nodes selected.
  const auto targets = p.select(three_job_ctx(30.0));
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{0, 1}));
}

TEST(MpcC, AccumulatesJobsForLargerGap) {
  MostPowerConsumingCollection p;
  // Gap 90 W: job 0 (40) + job 2 (60) = 100 >= 90. Jobs in descending
  // power order: 600, 450, 200.
  const auto targets = p.select(three_job_ctx(90.0));
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{0, 1, 3, 4, 5}));
}

TEST(MpcC, TakesEverythingWhenGapIsHuge) {
  MostPowerConsumingCollection p;
  const auto targets = p.select(three_job_ctx(1e6));
  EXPECT_EQ(targets.size(), 6u);
}

TEST(Lpc, PicksLeastPowerConsumingJob) {
  LeastPowerConsumingJob p;
  const auto targets = p.select(three_job_ctx());
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{2}));  // job 1: 200 W
}

TEST(LpcC, AccumulatesFromTheBottom) {
  LeastPowerConsumingCollection p;
  // Gap 50 W: job 1 saves 20, job 2 adds 60 -> 80 >= 50.
  const auto targets = p.select(three_job_ctx(50.0));
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{2, 3, 4, 5}));
}

TEST(Bfp, PicksSmallestSavingAboveGap) {
  BestFitJob p;
  // Gap 30: candidates with saving >= 30 are job 0 (40) and job 2 (60);
  // best fit is job 0.
  EXPECT_EQ(p.select(three_job_ctx(30.0)), (std::vector<hw::NodeId>{0, 1}));
  // Gap 50: only job 2 (60) covers it.
  EXPECT_EQ(p.select(three_job_ctx(50.0)), (std::vector<hw::NodeId>{3, 4, 5}));
}

TEST(Bfp, FallsBackToLargestSavingWhenNoneCovers) {
  BestFitJob p;
  // Gap 100: no single job saves that much; take the largest (job 2, 60).
  EXPECT_EQ(p.select(three_job_ctx(100.0)),
            (std::vector<hw::NodeId>{3, 4, 5}));
}

TEST(Bfp, EmptyWhenNothingThrottleable) {
  // Every node at the floor: no job has a throttleable node, so BFP must
  // return empty instead of dereferencing a never-assigned "chosen" job
  // (it used to reach the dereference with no guard at all).
  auto ctx = three_job_ctx(30.0);
  for (NodeView& nv : ctx.nodes) nv.at_lowest = true;
  BestFitJob p;
  EXPECT_TRUE(p.select(ctx).empty());

  PolicyContext empty;
  empty.index_nodes();
  EXPECT_TRUE(p.select(empty).empty());
}

TEST(Bfp, EqualSavingTieBreaksByJobOrder) {
  BestFitJob p;
  // Jobs 0 and 2 both save exactly 40 W, both >= gap 30: the strict "<"
  // in the best-above scan must keep the first job in context order.
  auto ctx = three_job_ctx(30.0);
  ctx.nodes[5].busy = false;  // job 2's saving drops from 60 to 40
  EXPECT_EQ(p.select(ctx), (std::vector<hw::NodeId>{0, 1}));

  // Same tie below the gap: gap 100 is not coverable; jobs 0 and 2 tie
  // at 40 W of best-effort saving, and the first again wins.
  auto ctx2 = three_job_ctx(100.0);
  ctx2.nodes[5].busy = false;
  EXPECT_EQ(p.select(ctx2), (std::vector<hw::NodeId>{0, 1}));
}

TEST(PolicyContext, RequiredSavingTracksGapExactly) {
  PolicyContext ctx;
  ctx.system_power = Watts{1234.5};
  ctx.p_low = Watts{1234.5};
  EXPECT_EQ(ctx.required_saving(), Watts{0.0});  // boundary: gap == 0
  ctx.system_power = Watts{1234.5 + 0.25};
  EXPECT_EQ(ctx.required_saving(), Watts{0.25});
}

TEST(SelectionScratchTest, VisitDedupsPerRound) {
  SelectionScratch s;
  s.begin_visit();
  EXPECT_TRUE(s.visit(7));
  EXPECT_FALSE(s.visit(7));
  EXPECT_TRUE(s.visit(3));
  s.begin_visit();  // new round: stamps from the old round are stale
  EXPECT_TRUE(s.visit(7));
  EXPECT_TRUE(s.visit(3));
  EXPECT_FALSE(s.visit(3));
}

TEST(SelectionScratchTest, BuildGroupsThrottleableNodesByJob) {
  const auto ctx = three_job_ctx();
  SelectionScratch s;
  s.build(ctx);
  ASSERT_EQ(s.refs().size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    const SelectionScratch::Ref& r = s.refs()[j];
    EXPECT_EQ(r.job, &ctx.jobs[j]);
    const std::vector<hw::NodeId> nodes(
        s.node_buf().begin() + r.begin, s.node_buf().begin() + r.end);
    EXPECT_EQ(nodes, ctx.jobs[j].nodes);
    EXPECT_EQ(r.saving, Watts{20.0 * static_cast<double>(nodes.size())});
  }
  // Rebuilding after a node becomes unthrottleable shrinks that job's
  // range (and drops the job entirely when nothing is left).
  auto ctx2 = three_job_ctx();
  ctx2.nodes[2].command_in_flight = true;  // job 1's only node
  ctx2.nodes[3].stale = true;              // job 2 loses one of three
  s.build(ctx2);
  ASSERT_EQ(s.refs().size(), 2u);
  EXPECT_EQ(s.refs()[0].job, &ctx2.jobs[0]);
  EXPECT_EQ(s.refs()[1].job, &ctx2.jobs[2]);
  EXPECT_EQ(s.refs()[1].end - s.refs()[1].begin, 2u);
}

TEST(Hri, PicksFastestRisingJob) {
  HighestRateOfIncrease p;
  // Job 1 doubled its power: rate 1.0 vs ~0.017 and ~0.011.
  EXPECT_EQ(p.select(three_job_ctx()), (std::vector<hw::NodeId>{2}));
}

TEST(Hri, NoHistoryMeansZeroRate) {
  auto ctx = three_job_ctx();
  for (auto& j : ctx.jobs) j.power_prev = Watts{0.0};
  HighestRateOfIncrease p;
  // All rates are 0; max_element picks the first throttleable job.
  EXPECT_FALSE(p.select(ctx).empty());
}

TEST(HriC, AccumulatesByRate) {
  HighestRateOfIncreaseCollection p;
  // Gap 50: job 1 (rate 1.0) saves 20, then job 0 (rate ~0.017) adds 40.
  const auto targets = p.select(three_job_ctx(50.0));
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{2, 0, 1}));
}

TEST(Uniform, TakesEveryThrottleableBusyNode) {
  baselines::UniformAllNodesPolicy p;
  auto ctx = three_job_ctx();
  ctx.nodes[4].at_lowest = true;
  ctx.nodes[5].busy = false;
  const auto targets = p.select(ctx);
  EXPECT_EQ(targets, (std::vector<hw::NodeId>{0, 1, 2, 3}));
}

TEST(Sla, ClassAssignmentIsDeterministicMix) {
  using baselines::SlaClass;
  using baselines::sla_class_of;
  EXPECT_EQ(sla_class_of(0), SlaClass::kBronze);
  EXPECT_EQ(sla_class_of(2), SlaClass::kSilver);
  EXPECT_EQ(sla_class_of(4), SlaClass::kGold);
  EXPECT_EQ(sla_class_of(5), SlaClass::kBronze);
}

TEST(Sla, ThrottlesBronzeBeforeGold) {
  baselines::SlaPriorityPolicy p;
  // Jobs 0,1 are bronze; job 2 silver. Small gap: bronze job with the
  // higher power (job 0, 600 W) goes first.
  const auto targets = p.select(three_job_ctx(30.0));
  ASSERT_GE(targets.size(), 2u);
  EXPECT_EQ(targets[0], 0u);
  EXPECT_EQ(targets[1], 1u);
}

TEST(Thermal, MeanJobTemperature) {
  auto ctx = three_job_ctx();
  ctx.nodes[0].temperature = Celsius{60.0};
  ctx.nodes[1].temperature = Celsius{70.0};
  EXPECT_DOUBLE_EQ(mean_job_temperature(ctx, ctx.jobs[0]), 65.0);
  JobView empty;
  EXPECT_DOUBLE_EQ(mean_job_temperature(ctx, empty), 0.0);
}

TEST(Thermal, HtPicksHottestJob) {
  auto ctx = three_job_ctx();
  // Job 2 (nodes 3-5) is the hottest on average despite lowest power.
  ctx.nodes[3].temperature = Celsius{78.0};
  ctx.nodes[4].temperature = Celsius{82.0};
  ctx.nodes[5].temperature = Celsius{80.0};
  ctx.nodes[0].temperature = Celsius{65.0};
  ctx.nodes[1].temperature = Celsius{66.0};
  ctx.nodes[2].temperature = Celsius{60.0};
  HottestJob p;
  EXPECT_EQ(p.select(ctx), (std::vector<hw::NodeId>{3, 4, 5}));
}

TEST(Thermal, HtSkipsFlooredHotJob) {
  auto ctx = three_job_ctx();
  ctx.nodes[3].temperature = Celsius{90.0};
  ctx.nodes[4].temperature = Celsius{90.0};
  ctx.nodes[5].temperature = Celsius{90.0};
  ctx.nodes[3].at_lowest = true;
  ctx.nodes[4].at_lowest = true;
  ctx.nodes[5].at_lowest = true;
  ctx.nodes[0].temperature = Celsius{70.0};
  ctx.nodes[1].temperature = Celsius{70.0};
  HottestJob p;
  EXPECT_EQ(p.select(ctx), (std::vector<hw::NodeId>{0, 1}));
}

TEST(Thermal, HtCAccumulatesHotJobsFirst) {
  auto ctx = three_job_ctx(50.0);  // gap 50 W; per-node saving 20 W
  ctx.nodes[2].temperature = Celsius{85.0};  // job 1 hottest (one node)
  ctx.nodes[0].temperature = Celsius{75.0};  // job 0 second
  ctx.nodes[1].temperature = Celsius{75.0};
  HottestJobCollection p;
  // Job 1 saves 20, then job 0 adds 40 -> 60 >= 50.
  EXPECT_EQ(p.select(ctx), (std::vector<hw::NodeId>{2, 0, 1}));
}

TEST(Registry, BuildsEveryRegisteredPolicy) {
  for (const std::string& name : policy_names()) {
    const PolicyPtr p = make_policy(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
}

TEST(Registry, CaseInsensitive) {
  EXPECT_EQ(make_policy("MPC")->name(), "mpc");
  EXPECT_EQ(make_policy("Hri-C")->name(), "hri-c");
}

TEST(Registry, UnknownThrows) {
  EXPECT_THROW(make_policy("nope"), std::invalid_argument);
  EXPECT_THROW(make_policy(""), std::invalid_argument);
}

TEST(Registry, HasElevenPolicies) {
  EXPECT_EQ(policy_names().size(), 11u);
}

// Property: every registered policy (plus baselines) only ever returns
// busy, non-floored candidate nodes with no duplicates, on randomly
// generated contexts.
class PolicyValidity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PolicyValidity, TargetsAreAlwaysValid) {
  const auto& [name, seed] = GetParam();
  PolicyPtr policy;
  if (name == "uniform") {
    policy = std::make_unique<baselines::UniformAllNodesPolicy>();
  } else if (name == "sla") {
    policy = std::make_unique<baselines::SlaPriorityPolicy>();
  } else {
    policy = make_policy(name);
  }

  common::Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  for (int trial = 0; trial < 60; ++trial) {
    PolicyContext ctx;
    ctx.p_low = Watts{1000.0};
    ctx.system_power = Watts{rng.uniform(1000.0, 1300.0)};
    const int n_nodes = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n_nodes; ++i) {
      NodeView nv;
      nv.id = static_cast<hw::NodeId>(i);
      nv.highest_level = 9;
      nv.level = static_cast<hw::Level>(rng.uniform_int(0, 9));
      nv.at_lowest = nv.level == 0;
      nv.busy = rng.bernoulli(0.7);
      nv.power = Watts{rng.uniform(100.0, 400.0)};
      nv.power_prev = Watts{rng.uniform(80.0, 400.0)};
      nv.power_one_level_down = nv.power - Watts{rng.uniform(0.0, 30.0)};
      ctx.nodes.push_back(nv);
    }
    ctx.index_nodes();
    // Random disjoint jobs over the nodes.
    int next = 0;
    workload::JobId jid = 0;
    while (next < n_nodes) {
      const int width =
          static_cast<int>(rng.uniform_int(1, std::min(4, n_nodes - next)));
      JobView jv;
      jv.id = jid++;
      for (int k = 0; k < width; ++k) {
        const auto& nv = ctx.nodes[static_cast<std::size_t>(next + k)];
        jv.nodes.push_back(nv.id);
        jv.power += nv.power;
        jv.power_prev += nv.power_prev;
      }
      next += width;
      ctx.jobs.push_back(std::move(jv));
    }

    const auto targets = policy->select(ctx);
    std::set<hw::NodeId> seen;
    for (const hw::NodeId id : targets) {
      const NodeView* nv = ctx.node(id);
      ASSERT_NE(nv, nullptr) << name << ": unknown node";
      ASSERT_TRUE(nv->busy) << name << ": idle node targeted";
      ASSERT_FALSE(nv->at_lowest) << name << ": floored node targeted";
      ASSERT_TRUE(seen.insert(id).second) << name << ": duplicate target";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyValidity,
    ::testing::Combine(::testing::Values("mpc", "mpc-c", "lpc", "lpc-c",
                                         "bfp", "hri", "hri-c", "ht",
                                         "ht-c", "pi-c", "pred-c",
                                         "uniform", "sla"),
                       ::testing::Range(1, 4)));

}  // namespace
}  // namespace pcap::power
