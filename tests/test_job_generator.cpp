#include "workload/job_generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace pcap::workload {
namespace {

TEST(JobGenerator, PaperDefaultUsesFullSuite) {
  auto gen = JobGenerator::paper_default(common::Rng(1));
  EXPECT_EQ(gen.suite().size(), 5u);
  EXPECT_EQ(gen.nprocs_choices().size(), 6u);
}

TEST(JobGenerator, MaxNprocsClipsChoices) {
  auto gen = JobGenerator::paper_default(common::Rng(1), 100);
  for (const int n : gen.nprocs_choices()) EXPECT_LE(n, 100);
  EXPECT_EQ(gen.nprocs_choices(), (std::vector<int>{8, 16, 32, 64}));
}

TEST(JobGenerator, NoFeasibleChoicesThrows) {
  EXPECT_THROW(JobGenerator::paper_default(common::Rng(1), 4),
               std::invalid_argument);
}

TEST(JobGenerator, EmptySuiteThrows) {
  EXPECT_THROW(JobGenerator({}, {8}, common::Rng(1)), std::invalid_argument);
}

TEST(JobGenerator, DrawsCoverAllAppsAndSizes) {
  auto gen = JobGenerator::paper_default(common::Rng(3));
  std::set<std::size_t> apps;
  std::set<int> sizes;
  for (int i = 0; i < 2000; ++i) {
    const JobDraw d = gen.draw();
    apps.insert(d.app_index);
    sizes.insert(d.nprocs);
  }
  EXPECT_EQ(apps.size(), 5u);
  EXPECT_EQ(sizes.size(), 6u);
}

TEST(JobGenerator, DrawsAreRoughlyUniform) {
  auto gen = JobGenerator::paper_default(common::Rng(5));
  std::map<std::size_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.draw().app_index];
  for (const auto& [app, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.2, 0.01) << app;
  }
}

TEST(JobGenerator, IdsIncrease) {
  auto gen = JobGenerator::paper_default(common::Rng(7));
  const Job a = gen.next(Seconds{0.0});
  const Job b = gen.next(Seconds{1.0});
  EXPECT_EQ(a.id() + 1, b.id());
  EXPECT_EQ(gen.jobs_issued(), 2u);
}

TEST(JobGenerator, NextStampsSubmitTime) {
  auto gen = JobGenerator::paper_default(common::Rng(9));
  const Job j = gen.next(Seconds{123.0});
  EXPECT_EQ(j.submit_time(), Seconds{123.0});
  EXPECT_EQ(j.state(), JobState::kQueued);
}

TEST(JobGenerator, DeterministicAcrossInstances) {
  auto a = JobGenerator::paper_default(common::Rng(11));
  auto b = JobGenerator::paper_default(common::Rng(11));
  for (int i = 0; i < 100; ++i) {
    const JobDraw da = a.draw();
    const JobDraw db = b.draw();
    EXPECT_EQ(da.app_index, db.app_index);
    EXPECT_EQ(da.nprocs, db.nprocs);
  }
}

TEST(JobGenerator, MakeJobValidatesIndex) {
  auto gen = JobGenerator::paper_default(common::Rng(13));
  JobDraw d;
  d.app_index = 99;
  d.nprocs = 8;
  EXPECT_THROW(gen.make_job(d, Seconds{0.0}), std::invalid_argument);
}

TEST(JobGenerator, JobsMatchDrawnParameters) {
  auto gen = JobGenerator::paper_default(common::Rng(17));
  const JobDraw d = gen.draw();
  const Job j = gen.make_job(d, Seconds{5.0});
  EXPECT_EQ(j.nprocs(), d.nprocs);
  EXPECT_EQ(j.app().name, gen.suite()[d.app_index].name);
}

}  // namespace
}  // namespace pcap::workload
