#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace pcap::common {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t x \n"), "x");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(Trim, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Split, BasicFields) {
  const auto v = split("a,b,c", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto v = split("a,,c,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[3], "");
}

TEST(Split, NoDelimiterGivesSingleField) {
  const auto v = split("abc", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "abc");
}

TEST(Split, EmptyStringGivesOneEmptyField) {
  const auto v = split("", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("hello", "hello world"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("MPC-C"), "mpc-c");
  EXPECT_EQ(to_lower("already"), "already");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strprintf, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, LongOutput) {
  const std::string s = strprintf("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

}  // namespace
}  // namespace pcap::common
