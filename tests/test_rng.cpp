#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pcap::common {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values reachable
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, LognormalMedian) {
  Rng rng(43);
  std::vector<double> xs;
  const int n = 50001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(4.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 4.0, 0.15);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, PickReturnsElement) {
  Rng rng(53);
  const std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(61);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkByStringTagReproducible) {
  Rng p1(71);
  Rng p2(71);
  Rng a = p1.fork("meter");
  Rng b = p2.fork("meter");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, HashTagDistinguishesStrings) {
  EXPECT_NE(hash_tag("meter"), hash_tag("jobs"));
  EXPECT_EQ(hash_tag("x"), hash_tag("x"));
}

TEST(OrnsteinUhlenbeck, RelaxesToMean) {
  Rng rng(73);
  OrnsteinUhlenbeck ou(5.0, 0.0, 10.0, 0.0);  // zero noise
  double v = 0.0;
  for (int i = 0; i < 100; ++i) v = ou.step(1.0, rng);
  EXPECT_NEAR(v, 5.0, 0.01);
}

TEST(OrnsteinUhlenbeck, StationaryVariance) {
  Rng rng(79);
  OrnsteinUhlenbeck ou(0.0, 2.0, 5.0, 0.0);
  // Warm up past several relaxation times, then sample.
  for (int i = 0; i < 100; ++i) ou.step(1.0, rng);
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = ou.step(1.0, rng);
    sq += x * x;
  }
  // Stationary sd should be ~2. Samples are correlated, so be generous.
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.2);
}

TEST(RngStream, DoesNotAdvanceParent) {
  Rng parent(123);
  Rng untouched(123);
  (void)parent.stream(0);
  (void)parent.stream(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(parent.next_u64(), untouched.next_u64());
  }
}

TEST(RngStream, PureFunctionOfParentStateAndIndex) {
  // stream(i) must depend only on (parent state, i) — never on which
  // other streams were derived first. This is what makes per-node draws
  // order-independent under a parallel sweep.
  Rng a(42);
  Rng b(42);
  Rng ordered = a.stream(5);
  (void)b.stream(3);
  (void)b.stream(9);
  Rng interleaved = b.stream(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ordered.next_u64(), interleaved.next_u64());
  }
}

TEST(RngStream, DistinctIndicesDecorrelate) {
  Rng parent(7);
  Rng s0 = parent.stream(0);
  Rng s1 = parent.stream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngStream, AdjacentIndicesHaveUnbiasedOutput) {
  // SplitMix64 finalization should leave no visible correlation between
  // neighbouring stream indices: averaged uniforms stay near 1/2.
  Rng parent(2026);
  double sum = 0.0;
  const int streams = 2000;
  for (int i = 0; i < streams; ++i) {
    Rng s = parent.stream(static_cast<std::uint64_t>(i));
    sum += s.uniform();
  }
  EXPECT_NEAR(sum / streams, 0.5, 0.02);
}

TEST(RngStream, ForkTagIndexMatchesForkThenStream) {
  Rng a(99);
  Rng b(99);
  Rng direct = a.fork("noise", 11);
  Rng composed = b.fork("noise").stream(11);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(direct.next_u64(), composed.next_u64());
  }
  // And the two parents advanced identically (one fork each).
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(OrnsteinUhlenbeck, ResetOverridesValue) {
  Rng rng(83);
  OrnsteinUhlenbeck ou(0.0, 1.0, 5.0, 3.0);
  EXPECT_DOUBLE_EQ(ou.value(), 3.0);
  ou.reset(-1.0);
  EXPECT_DOUBLE_EQ(ou.value(), -1.0);
}

}  // namespace
}  // namespace pcap::common
