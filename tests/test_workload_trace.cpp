#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace pcap::workload {
namespace {

WorkloadTrace sample_trace() {
  WorkloadTrace t;
  t.add({0.0, "EP", 64});
  t.add({10.5, "CG", 8});
  t.add({100.0, "LU", 256});
  return t;
}

TEST(WorkloadTrace, AddAndQuery) {
  const WorkloadTrace t = sample_trace();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.entries()[1].app_name, "CG");
  EXPECT_DOUBLE_EQ(t.entries()[1].submit_time_s, 10.5);
}

TEST(WorkloadTrace, RejectsTimeRegression) {
  WorkloadTrace t;
  t.add({10.0, "EP", 8});
  EXPECT_THROW(t.add({5.0, "CG", 8}), std::invalid_argument);
}

TEST(WorkloadTrace, RejectsBadProcs) {
  WorkloadTrace t;
  EXPECT_THROW(t.add({0.0, "EP", 0}), std::invalid_argument);
}

TEST(WorkloadTrace, CsvRoundTrip) {
  const WorkloadTrace t = sample_trace();
  const WorkloadTrace t2 = WorkloadTrace::from_csv(t.to_csv());
  ASSERT_EQ(t2.size(), 3u);
  EXPECT_EQ(t2.entries()[0].app_name, "EP");
  EXPECT_EQ(t2.entries()[2].nprocs, 256);
  EXPECT_DOUBLE_EQ(t2.entries()[1].submit_time_s, 10.5);
}

TEST(WorkloadTrace, FromCsvEmptyText) {
  const WorkloadTrace t = WorkloadTrace::from_csv("");
  EXPECT_TRUE(t.empty());
}

TEST(WorkloadTrace, FromCsvMalformedRowThrows) {
  EXPECT_THROW(WorkloadTrace::from_csv("submit_s,app,nprocs\n1.0,EP\n"),
               std::runtime_error);
}

TEST(WorkloadTrace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  sample_trace().save(path);
  const WorkloadTrace loaded = WorkloadTrace::load(path);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.entries()[2].app_name, "LU");
  std::remove(path.c_str());
}

TEST(WorkloadTrace, LoadMissingFileThrows) {
  EXPECT_THROW(WorkloadTrace::load("/does/not/exist.csv"),
               std::runtime_error);
}

TEST(WorkloadTrace, MaterializeBuildsJobs) {
  const auto jobs = sample_trace().materialize(NpbClass::kC);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id(), 0u);
  EXPECT_EQ(jobs[1].id(), 1u);
  EXPECT_EQ(jobs[0].app().name, "EP");
  EXPECT_EQ(jobs[2].nprocs(), 256);
  EXPECT_EQ(jobs[1].submit_time(), Seconds{10.5});
  for (const auto& j : jobs) EXPECT_EQ(j.state(), JobState::kQueued);
}

TEST(WorkloadTrace, MaterializeUnknownAppThrows) {
  WorkloadTrace t;
  t.add({0.0, "UA", 8});
  EXPECT_THROW(t.materialize(), std::invalid_argument);
}

}  // namespace
}  // namespace pcap::workload
