#include "hw/power_meter.hpp"

#include <gtest/gtest.h>

#include "hw/node_spec.hpp"

namespace pcap::hw {
namespace {

std::vector<Node> make_nodes(std::size_t n) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<NodeId>(i), tianhe1a_node_spec());
  }
  return nodes;
}

TEST(PowerMeter, ExactSumsTruePower) {
  const auto nodes = make_nodes(4);
  Watts expected{0.0};
  for (const Node& n : nodes) expected += n.true_power();
  EXPECT_DOUBLE_EQ(SystemPowerMeter::exact(nodes, 1.0).value(),
                   expected.value());
}

TEST(PowerMeter, PsuEfficiencyScalesWallPower) {
  const auto nodes = make_nodes(2);
  const Watts it = SystemPowerMeter::exact(nodes, 1.0);
  const Watts wall = SystemPowerMeter::exact(nodes, 0.92);
  EXPECT_NEAR(wall.value(), it.value() / 0.92, 1e-9);
  EXPECT_GT(wall, it);
}

TEST(PowerMeter, NoiselessMeasureEqualsExact) {
  auto nodes = make_nodes(3);
  PowerMeterParams p;
  p.noise_sigma = 0.0;
  SystemPowerMeter meter(p, common::Rng(1));
  EXPECT_DOUBLE_EQ(meter.measure(nodes).value(),
                   SystemPowerMeter::exact(nodes, p.psu_efficiency).value());
}

TEST(PowerMeter, NoiseIsSmallAndUnbiased) {
  auto nodes = make_nodes(4);
  PowerMeterParams p;
  p.noise_sigma = 0.002;
  SystemPowerMeter meter(p, common::Rng(7));
  const double truth = SystemPowerMeter::exact(nodes, p.psu_efficiency).value();
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double m = meter.measure(nodes).value();
    EXPECT_NEAR(m, truth, truth * 0.02);  // 10 sigma
    sum += m;
  }
  EXPECT_NEAR(sum / n, truth, truth * 0.001);
}

TEST(PowerMeter, BadEfficiencyThrows) {
  PowerMeterParams p;
  p.psu_efficiency = 0.0;
  EXPECT_THROW(SystemPowerMeter(p, common::Rng(1)), std::invalid_argument);
  p.psu_efficiency = 1.5;
  EXPECT_THROW(SystemPowerMeter(p, common::Rng(1)), std::invalid_argument);
}

TEST(PowerMeter, NegativeNoiseThrows) {
  PowerMeterParams p;
  p.noise_sigma = -0.1;
  EXPECT_THROW(SystemPowerMeter(p, common::Rng(1)), std::invalid_argument);
}

TEST(PowerMeter, EmptyClusterReadsZero) {
  const std::vector<Node> none;
  EXPECT_DOUBLE_EQ(SystemPowerMeter::exact(none, 0.92).value(), 0.0);
}

TEST(PowerMeter, ThrottledClusterReadsLower) {
  auto nodes = make_nodes(4);
  OperatingPoint op;
  op.cpu_utilization = 0.9;
  op.mem_total = nodes[0].spec().mem_total;
  op.nic_bandwidth = nodes[0].spec().nic_bandwidth;
  for (auto& n : nodes) n.set_operating_point(op);
  const Watts before = SystemPowerMeter::exact(nodes, 0.92);
  for (auto& n : nodes) n.set_level(0);
  const Watts after = SystemPowerMeter::exact(nodes, 0.92);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace pcap::hw
