#include "interconnect/interconnect.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/scenario.hpp"
#include "workload/phase.hpp"

namespace pcap::interconnect {
namespace {

InterconnectParams params(double uplink = 100.0, int per_switch = 4,
                          double remote = 0.5) {
  InterconnectParams p;
  p.enabled = true;
  p.uplink_bandwidth = uplink;
  p.nodes_per_switch = per_switch;
  p.remote_fraction = remote;
  return p;
}

TEST(Interconnect, SwitchAssignment) {
  const Interconnect ic(params(100.0, 4), 10);
  EXPECT_EQ(ic.num_switches(), 3u);
  EXPECT_EQ(ic.switch_of(0), 0u);
  EXPECT_EQ(ic.switch_of(3), 0u);
  EXPECT_EQ(ic.switch_of(4), 1u);
  EXPECT_EQ(ic.switch_of(9), 2u);
  EXPECT_THROW((void)ic.switch_of(10), std::out_of_range);
}

TEST(Interconnect, DisabledDeliversEverything) {
  InterconnectParams p = params(1.0);  // absurdly small uplink
  p.enabled = false;
  const Interconnect ic(p, 4);
  const auto f = ic.delivered_fractions({1e9, 1e9, 1e9, 1e9}, Seconds{1.0});
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Interconnect, UncontendedDeliversEverything) {
  // 4 nodes x 50 B offered x 0.5 remote = 100 B <= 100 B/s x 1 s? exactly
  // at capacity -> fraction 1.
  const Interconnect ic(params(), 4);
  const auto f = ic.delivered_fractions({50.0, 50.0, 50.0, 50.0},
                                        Seconds{1.0});
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Interconnect, OversubscribedSharesProportionally) {
  // Offered remote = 4 x 100 x 0.5 = 200 over capacity 100: fraction 0.5.
  const Interconnect ic(params(), 4);
  const auto f = ic.delivered_fractions({100.0, 100.0, 100.0, 100.0},
                                        Seconds{1.0});
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Interconnect, ContentionIsPerSwitch) {
  // Nodes 0-3 on switch 0 (saturated); nodes 4-7 on switch 1 (idle).
  const Interconnect ic(params(), 8);
  std::vector<double> offered = {200.0, 200.0, 200.0, 200.0, 0.0, 0.0, 0.0,
                                 0.0};
  const auto f = ic.delivered_fractions(offered, Seconds{1.0});
  EXPECT_LT(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[0], f[3]);
  EXPECT_DOUBLE_EQ(f[4], 1.0);
  EXPECT_DOUBLE_EQ(f[7], 1.0);
}

TEST(Interconnect, UtilizationReportsOversubscription) {
  const Interconnect ic(params(), 4);
  const auto u = ic.uplink_utilization({100.0, 100.0, 100.0, 100.0},
                                       Seconds{1.0});
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 2.0);
}

TEST(Interconnect, DtScalesCapacity) {
  const Interconnect ic(params(), 4);
  // Same offered bytes over a 2 s window: half the rate, no contention.
  const auto f = ic.delivered_fractions({100.0, 100.0, 100.0, 100.0},
                                        Seconds{2.0});
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Interconnect, BadParamsThrow) {
  EXPECT_THROW(Interconnect(params(0.0), 4), std::invalid_argument);
  InterconnectParams p = params();
  p.nodes_per_switch = 0;
  EXPECT_THROW(Interconnect(p, 4), std::invalid_argument);
  p = params();
  p.remote_fraction = 1.5;
  EXPECT_THROW(Interconnect(p, 4), std::invalid_argument);
  EXPECT_THROW(Interconnect(params(), 0), std::invalid_argument);
}

TEST(Interconnect, SizeMismatchThrows) {
  const Interconnect ic(params(), 4);
  EXPECT_THROW(ic.delivered_fractions({1.0}, Seconds{1.0}),
               std::invalid_argument);
  EXPECT_THROW(ic.delivered_fractions({1.0, 1.0, 1.0, 1.0}, Seconds{0.0}),
               std::invalid_argument);
}

TEST(NetworkProgressRate, Bounds) {
  using workload::network_progress_rate;
  EXPECT_DOUBLE_EQ(network_progress_rate(0.0, 0.5), 1.0);  // insensitive
  EXPECT_DOUBLE_EQ(network_progress_rate(1.0, 0.5), 0.5);  // fully bound
  EXPECT_DOUBLE_EQ(network_progress_rate(0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(network_progress_rate(0.5, 1.0), 1.0);
  EXPECT_THROW(network_progress_rate(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(network_progress_rate(0.5, 1.5), std::invalid_argument);
}

TEST(ClusterWithContention, CommHeavyJobsSlowDown) {
  // Same workload, fabric off vs badly oversubscribed fabric: jobs take
  // longer under contention.
  cluster::ExperimentConfig cfg = cluster::small_scenario(37);
  cfg.cluster.num_nodes = 16;

  cluster::Cluster free_fabric(cfg.cluster);
  free_fabric.start_recording();
  free_fabric.run(Seconds{2 * 3600.0});

  cfg.cluster.interconnect.enabled = true;
  cfg.cluster.interconnect.nodes_per_switch = 8;
  cfg.cluster.interconnect.uplink_bandwidth = 2e8;  // ~25 MB/s per node
  cluster::Cluster contended(cfg.cluster);
  contended.start_recording();
  contended.run(Seconds{2 * 3600.0});

  const auto perf_free =
      metrics::summarize_performance(free_fabric.finished_records());
  const auto perf_contended =
      metrics::summarize_performance(contended.finished_records());
  ASSERT_GT(perf_free.finished_jobs, 0u);
  ASSERT_GT(perf_contended.finished_jobs, 0u);
  // Uncapped + free fabric: jobs run at model speed. Contended: slower.
  EXPECT_GT(perf_free.performance, 0.99);
  EXPECT_LT(perf_contended.performance, perf_free.performance - 0.01);
}

TEST(ClusterWithContention, FractionsExposedPerTick) {
  cluster::ExperimentConfig cfg = cluster::small_scenario(39);
  cfg.cluster.num_nodes = 8;
  cfg.cluster.interconnect.enabled = true;
  cfg.cluster.interconnect.uplink_bandwidth = 1e8;
  cluster::Cluster cl(cfg.cluster);
  cl.run(Seconds{1800.0});
  const auto& f = cl.last_delivered_fractions();
  ASSERT_EQ(f.size(), 8u);
  for (const double v : f) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace pcap::interconnect
