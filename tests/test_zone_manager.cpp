// The hierarchical zone-sharded control plane: partitioning, per-zone
// selection against root-computed deficit shares, yellow/red quiescence,
// flat-vs-zoned fidelity on the experiment scenarios, and bit-identical
// determinism across worker-thread counts under a degraded management
// plane.
#include "power/zone_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/uniform_policy.hpp"
#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "common/thread_pool.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "obs/registry.hpp"
#include "power/checkpoint.hpp"
#include "power/policy_registry.hpp"
#include "workload/npb.hpp"

namespace pcap::power {
namespace {

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void load(double utilization) {
    for (auto& n : nodes) set_util(n, utilization);
  }

  void set_util(hw::Node& n, double utilization) {
    hw::OperatingPoint op;
    op.cpu_utilization = utilization;
    op.mem_used = n.spec().mem_total * 0.4;
    op.mem_total = n.spec().mem_total;
    op.tau = Seconds{1.0};
    op.nic_bandwidth = n.spec().nic_bandwidth;
    n.set_operating_point(op);
    n.set_busy(true);
  }

  void run_job(workload::JobId id, int nprocs) {
    scheduler.submit(workload::Job(
        id, workload::npb_by_name("lu", workload::NpbClass::kC), nprocs,
        Seconds{0.0}));
    scheduler.try_launch(Seconds{0.0});
  }
};

CappingManagerParams shard_params() {
  CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};  // P_L = 1680, P_H = 1860
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  p.capping.steady_green_cycles = 3;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  p.green_collect_stride = 1;
  return p;
}

ZoneTreeParams zone_params(std::size_t zones) {
  ZoneTreeParams zp;
  zp.zone_count = zones;
  return zp;
}

ZoneTreeManager make_tree(std::size_t zones,
                          CappingManagerParams p = shard_params(),
                          ZoneTreeParams zp = ZoneTreeParams{}) {
  zp.zone_count = zones;
  return ZoneTreeManager(
      zp, p, [] { return make_policy("mpc"); }, common::Rng(1));
}

TEST(ZoneTree, NameIncludesZoneCountAndPolicy) {
  const ZoneTreeManager m = make_tree(4);
  EXPECT_EQ(m.name(), "zonetree(4):capping:mpc");
}

TEST(ZoneTree, ConstructorValidation) {
  EXPECT_THROW(make_tree(0), std::invalid_argument);
  EXPECT_THROW(ZoneTreeManager(zone_params(2), shard_params(), nullptr,
                               common::Rng(1)),
               std::invalid_argument);
  CappingManagerParams with_selector = shard_params();
  with_selector.selector = CandidateSelectorParams{};
  EXPECT_THROW(make_tree(2, with_selector), std::invalid_argument);
}

TEST(ZoneTree, ParseHelpers) {
  EXPECT_EQ(parse_zone_assignment("block"),
            ZoneTreeParams::Assignment::kBlock);
  EXPECT_EQ(parse_zone_assignment("stride"),
            ZoneTreeParams::Assignment::kStride);
  EXPECT_THROW(parse_zone_assignment("diagonal"), std::invalid_argument);
  EXPECT_EQ(parse_zone_redistribution("uniform"),
            ZoneTreeParams::Redistribution::kUniform);
  EXPECT_EQ(parse_zone_redistribution("proportional"),
            ZoneTreeParams::Redistribution::kProportional);
  EXPECT_THROW(parse_zone_redistribution("greedy"), std::invalid_argument);
}

TEST(ZoneTree, BlockPartitionIsBalancedAndContiguous) {
  ZoneTreeManager m = make_tree(4);
  // Unsorted with a duplicate: the partition is a pure function of the
  // de-duplicated id set.
  m.set_candidate_set({9, 3, 0, 7, 1, 4, 2, 8, 5, 6, 3});
  EXPECT_EQ(m.zone_members(0), (std::vector<hw::NodeId>{0, 1, 2}));
  EXPECT_EQ(m.zone_members(1), (std::vector<hw::NodeId>{3, 4, 5}));
  EXPECT_EQ(m.zone_members(2), (std::vector<hw::NodeId>{6, 7}));
  EXPECT_EQ(m.zone_members(3), (std::vector<hw::NodeId>{8, 9}));
}

TEST(ZoneTree, StridePartitionRoundRobins) {
  ZoneTreeParams zp;
  zp.assignment = ZoneTreeParams::Assignment::kStride;
  ZoneTreeManager m = make_tree(4, shard_params(), zp);
  m.set_candidate_set({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(m.zone_members(0), (std::vector<hw::NodeId>{0, 4, 8}));
  EXPECT_EQ(m.zone_members(1), (std::vector<hw::NodeId>{1, 5, 9}));
  EXPECT_EQ(m.zone_members(2), (std::vector<hw::NodeId>{2, 6}));
  EXPECT_EQ(m.zone_members(3), (std::vector<hw::NodeId>{3, 7}));
}

TEST(ZoneTree, MoreZonesThanCandidatesLeavesEmptyShardsInert) {
  // zones.count is an operator knob: configuring more zones than there
  // are controllable nodes must leave the surplus shards empty and
  // harmless — no division by the empty-zone count, no spurious
  // quiescence, no commands from nowhere.
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);
  ZoneTreeManager m = make_tree(4);
  m.set_candidate_set({0, 1});
  EXPECT_EQ(m.zone_members(0), (std::vector<hw::NodeId>{0}));
  EXPECT_EQ(m.zone_members(1), (std::vector<hw::NodeId>{1}));
  EXPECT_TRUE(m.zone_members(2).empty());
  EXPECT_TRUE(m.zone_members(3).empty());

  // Yellow: the deficit lands entirely on the populated zones.
  auto r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(r.state, PowerState::kYellow);
  EXPECT_EQ(m.zone_share(2).value(), 0.0);
  EXPECT_EQ(m.zone_share(3).value(), 0.0);
  EXPECT_GT(m.zone_share(0).value() + m.zone_share(1).value(), 0.0);

  // Once hinted, an empty zone is quiescent (nothing to shed) — it stops
  // burning active cycles without wedging the populated zones.
  r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  EXPECT_LE(m.zones_active_last_cycle(), 2u);

  // Red and green cycles cross the empty shards without incident too.
  r = m.cycle(Watts{1900.0}, rig.nodes, rig.scheduler, Seconds{3.0});
  EXPECT_EQ(r.state, PowerState::kRed);
  r = m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{4.0});
  EXPECT_EQ(r.state, PowerState::kGreen);
}

TEST(ZoneTree, EmptyShardsAreInertUnderProportionalRedistribution) {
  // Proportional shares divide by the eligible zones' summed power: empty
  // zones contribute nothing and must not poison the denominator.
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);
  ZoneTreeParams zp;
  zp.redistribution = ZoneTreeParams::Redistribution::kProportional;
  ZoneTreeManager m = make_tree(3, shard_params(), zp);
  m.set_candidate_set({0, 1});
  for (int c = 1; c <= 4; ++c) {
    const auto r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                           Seconds{static_cast<double>(c)});
    EXPECT_EQ(r.state, PowerState::kYellow) << "cycle " << c;
    EXPECT_EQ(m.zone_share(2).value(), 0.0) << "cycle " << c;
  }
}

TEST(ZoneTree, TrainingCyclesDoNotThrottle) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManagerParams p = shard_params();
  p.thresholds.training_cycles = 2;
  ZoneTreeManager m = make_tree(2, p);
  m.set_candidate_set({0, 1, 2, 3});
  const auto r = m.cycle(Watts{1e6}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_TRUE(r.training);
  EXPECT_EQ(r.targets, 0u);
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
}

TEST(ZoneTree, YellowCycleSplitsDeficitAcrossZones) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);  // zone 0: nodes 0, 1
  rig.run_job(2, 24);  // zone 1: nodes 2, 3
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});

  const auto r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                         Seconds{1.0});
  EXPECT_EQ(r.state, PowerState::kYellow);
  // Both zones can shed: the 20 W deficit splits 10/10 and each zone
  // throttles within its own membership.
  EXPECT_DOUBLE_EQ(m.zone_share(0).value(), 10.0);
  EXPECT_DOUBLE_EQ(m.zone_share(1).value(), 10.0);
  EXPECT_GT(r.targets, 0u);
  EXPECT_EQ(r.transitions, r.targets);
  EXPECT_TRUE(rig.nodes[0].level() < 9 || rig.nodes[1].level() < 9);
  EXPECT_TRUE(rig.nodes[2].level() < 9 || rig.nodes[3].level() < 9);
}

TEST(ZoneTree, ProportionalRedistributionFollowsZonePower) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);
  rig.run_job(2, 24);
  // Zone 1's nodes idle along at a fraction of zone 0's draw.
  rig.set_util(rig.nodes[2], 0.2);
  rig.set_util(rig.nodes[3], 0.2);
  ZoneTreeParams zp;
  zp.redistribution = ZoneTreeParams::Redistribution::kProportional;
  ZoneTreeManager m = make_tree(2, shard_params(), zp);
  m.set_candidate_set({0, 1, 2, 3});

  const auto r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                         Seconds{1.0});
  EXPECT_EQ(r.state, PowerState::kYellow);
  const double s0 = m.zone_share(0).value();
  const double s1 = m.zone_share(1).value();
  EXPECT_NEAR(s0 + s1, 20.0, 1e-9);  // shares partition the deficit
  EXPECT_GT(s0, s1);                 // the hungrier zone owes more
  EXPECT_NEAR(s0 / s1, m.zone_power(0).value() / m.zone_power(1).value(),
              1e-9);
}

TEST(ZoneTree, RedCycleFloorsEveryZone) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2});  // node 3 stays unmanaged

  const auto r = m.cycle(Watts{1900.0}, rig.nodes, rig.scheduler,
                         Seconds{1.0});
  EXPECT_EQ(r.state, PowerState::kRed);
  EXPECT_EQ(rig.nodes[0].level(), 0);
  EXPECT_EQ(rig.nodes[1].level(), 0);
  EXPECT_EQ(rig.nodes[2].level(), 0);
  EXPECT_EQ(rig.nodes[3].level(), 9);  // outside A_candidate
}

TEST(ZoneTree, SteadyGreenRestoresAcrossZones) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManagerParams p = shard_params();
  p.capping.steady_green_cycles = 2;
  ZoneTreeManager m = make_tree(2, p);
  m.set_candidate_set({0, 1, 2, 3});

  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});  // yellow
  EXPECT_TRUE(rig.nodes[0].level() < 9 || rig.nodes[1].level() < 9);
  for (int c = 2; c <= 12; ++c) {
    m.cycle(Watts{100.0}, rig.nodes, rig.scheduler,
            Seconds{static_cast<double>(c)});
  }
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
  for (std::size_t z = 0; z < m.zone_count(); ++z) {
    EXPECT_TRUE(m.zone(z).engine().degraded().empty()) << "zone " << z;
  }
}

// The tentpole's scaling property: a zone whose last clean context shows
// nothing left to shed stops collecting/building/selecting entirely while
// the global state is pinned, and re-arms the moment the scheduler moves.
TEST(ZoneTree, PinnedYellowDrainsToZeroActiveZones) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);  // only zone 0 has job capacity
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});
  obs::Registry reg;
  m.bind_metrics(reg);

  const auto r1 = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                          Seconds{1.0});
  EXPECT_EQ(r1.state, PowerState::kYellow);
  EXPECT_EQ(m.zones_active_last_cycle(), 2u);  // no hints yet: all active

  // Zone 1 published a clean nothing-to-shed hint on cycle 1 and drops
  // out immediately; zone 0 keeps shedding until its job nodes floor and
  // its last commands ack, then goes quiescent too.
  std::size_t drained_at = 0;
  for (int c = 2; c <= 40; ++c) {
    m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
            Seconds{static_cast<double>(c)});
    EXPECT_LE(m.zones_active_last_cycle(), 1u) << "cycle " << c;
    if (m.zones_active_last_cycle() == 0) {
      drained_at = static_cast<std::size_t>(c);
      break;
    }
  }
  ASSERT_GT(drained_at, 0u) << "yellow never went fully quiescent";
  EXPECT_EQ(rig.nodes[0].level(), 0);
  EXPECT_EQ(rig.nodes[1].level(), 0);

  // Pinned and drained: every further cycle runs zero zone sweeps.
  for (int c = 0; c < 5; ++c) {
    m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
            Seconds{static_cast<double>(41 + c)});
    EXPECT_EQ(m.zones_active_last_cycle(), 0u);
  }
  const auto z0 = reg.counter_value("pcap_zone_active_cycles_total{zone=\"0\"}");
  const auto z1 = reg.counter_value("pcap_zone_active_cycles_total{zone=\"1\"}");
  ASSERT_TRUE(z0.has_value());
  ASSERT_TRUE(z1.has_value());
  EXPECT_GT(*z0, *z1);  // zone 1 dropped out on cycle 2, zone 0 much later
  EXPECT_EQ(*z1, 1u);

  // A job landing on zone 1's nodes is a root dirty trigger: both zones
  // re-arm, and the new capacity starts absorbing the deficit.
  rig.run_job(2, 24);  // nodes 2, 3
  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{50.0});
  EXPECT_EQ(m.zones_active_last_cycle(), 2u);
  const auto r_new = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                             Seconds{51.0});
  EXPECT_EQ(r_new.state, PowerState::kYellow);
  EXPECT_TRUE(rig.nodes[2].level() < 9 || rig.nodes[3].level() < 9);
}

TEST(ZoneTree, MetricsUseFlatManagerSchema) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});
  obs::Registry reg;
  m.bind_metrics(reg);
  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  // The root publishes the same series names the flat manager does, so
  // experiment extraction is agnostic to which control plane ran.
  EXPECT_EQ(reg.counter_value("pcap_manager_cycles_total{state=\"yellow\"}")
                .value_or(0),
            1u);
  EXPECT_GT(
      reg.counter_value("pcap_manager_transitions_total").value_or(0), 0u);
  EXPECT_TRUE(reg.find_gauge("pcap_zone_power_watts{zone=\"1\"}").has_value());
}

// --- End-to-end fidelity and determinism -------------------------------

std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PCAP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

cluster::ExperimentConfig quick_config(std::uint64_t seed = 7) {
  cluster::ExperimentConfig cfg = cluster::small_scenario(seed);
  cfg.cluster.num_nodes = 12;
  cfg.calibration_duration = Seconds{900.0};
  cfg.training = Seconds{900.0};
  cfg.measured = Seconds{2700.0};
  return cfg;
}

// A Z=4 tree must deliver the flat controller's fidelity on the paper
// scenarios: capped peak, comparable overspend suppression, comparable
// job performance. Bit-parity with the flat run is NOT expected — the
// zones select against deficit shares, not the global context — so the
// comparison is by tolerance.
TEST(ZoneTree, ZonedExperimentMatchesFlatFidelity) {
  cluster::ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  const cluster::ExperimentResult flat = cluster::run_experiment(cfg);
  cfg.zone_count = 4;
  const cluster::ExperimentResult zoned = cluster::run_experiment(cfg);

  EXPECT_GT(zoned.yellow_cycles, 0u);
  // Peak control matches flat to within 2% (neither plane can pre-empt a
  // between-cycle spike, so the absolute peak briefly overshoots the
  // provision in this quick scenario — identically for both).
  EXPECT_LE(zoned.p_max.value(), flat.p_max.value() * 1.02);
  // Overspend suppression within 50% of flat (both are near zero; the
  // uncapped baseline is far above either).
  cfg.zone_count = 1;
  cfg.manager = "none";
  const cluster::ExperimentResult none = cluster::run_experiment(cfg);
  EXPECT_LT(zoned.delta_pxt, none.delta_pxt * 0.5);
  EXPECT_LE(zoned.delta_pxt, flat.delta_pxt * 1.5 + 1e-3);
  EXPECT_NEAR(zoned.perf.performance, flat.perf.performance, 0.05);
  EXPECT_GT(zoned.perf.finished_jobs, 0u);
}

TEST(ZoneTree, StrideZonesAlsoStayCapped) {
  cluster::ExperimentConfig cfg = quick_config(11);
  cfg.manager = "mpc";
  cfg.zone_count = 4;
  cfg.zone_assignment = "stride";
  cfg.zone_redistribution = "proportional";
  const cluster::ExperimentResult r = cluster::run_experiment(cfg);
  cfg.zone_count = 1;
  const cluster::ExperimentResult flat = cluster::run_experiment(cfg);
  EXPECT_LE(r.p_max.value(), flat.p_max.value() * 1.02);
  EXPECT_GT(r.yellow_cycles, 0u);
  EXPECT_GT(r.perf.finished_jobs, 0u);
}

TEST(ZoneTree, ExperimentWiringRejectsInvalidCombinations) {
  cluster::ExperimentConfig cfg = quick_config();
  cfg.zone_count = 2;
  cfg.provision = Watts{3000.0};  // skip calibration
  for (const char* manager : {"none", "budget", "feedback"}) {
    cfg.manager = manager;
    EXPECT_THROW(cluster::run_experiment(cfg), std::invalid_argument)
        << manager;
  }
  cfg.manager = "mpc";
  cfg.dynamic_candidates = true;
  EXPECT_THROW(cluster::run_experiment(cfg), std::invalid_argument);
  cfg.dynamic_candidates = false;
  const cluster::ExperimentResult r = cluster::run_experiment(cfg);
  EXPECT_GT(r.perf.finished_jobs, 0u);
}

struct RunResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  double total_energy_j = 0.0;
  std::uint64_t samples_lost = 0;
  std::uint64_t commands_lost = 0;
};

/// A degraded-management-plane cluster run under the Z=3 zone tree:
/// telemetry loss/delay/dropout/crash/corruption AND a lossy, delayed,
/// reboot-prone actuation plane, with the zone fan-out forced parallel.
RunResult run_degraded_zone_cluster(std::size_t worker_threads,
                                    bool incremental = true) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = fault_seed(20260808);
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cluster::Cluster cl(cfg);

  CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.75;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;
  p.collector.transport.delay_cycles = 2;
  p.collector.faults.agent_dropout_rate = 0.02;
  p.collector.faults.agent_recovery_rate = 0.25;
  p.collector.faults.crash_rate = 2e-3;
  p.collector.faults.crash_duration_cycles = 30;
  p.collector.faults.corruption_rate = 0.01;
  p.max_sample_age_cycles = 3;
  p.actuation.command_loss_rate = 0.05;
  p.actuation.delivery_delay_cycles = 1;
  p.actuation.partial_transition_rate = 0.05;
  p.actuation.reboot_rate = 1e-3;
  p.actuation.reboot_duration_cycles = 10;
  p.incremental_context = incremental;

  ZoneTreeParams zp;
  zp.zone_count = 3;
  zp.redistribution = ZoneTreeParams::Redistribution::kProportional;
  auto mgr = std::make_unique<ZoneTreeManager>(
      zp, p, [] { return PolicyPtr(new baselines::UniformAllNodesPolicy()); },
      common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{500.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.finished) {
    out.total_energy_j += r.energy_j;
  }
  out.samples_lost = cl.last_report().samples_lost;
  out.commands_lost = cl.last_report().commands_lost;
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.running_jobs, pb.running_jobs) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
    EXPECT_EQ(pa.stale_nodes, pb.stale_nodes) << "tick " << i;
    EXPECT_EQ(pa.fallback_nodes, pb.fallback_nodes) << "tick " << i;
    EXPECT_EQ(pa.skipped_targets, pb.skipped_targets) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job " << i;
    EXPECT_EQ(a.finished[i].energy_j, b.finished[i].energy_j) << "job " << i;
  }
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.samples_lost, b.samples_lost);
  EXPECT_EQ(a.commands_lost, b.commands_lost);
}

TEST(ZoneTree, DegradedZonedRunIsBitIdenticalAcrossWorkerCounts) {
  const RunResult serial = run_degraded_zone_cluster(1);
  ASSERT_GT(serial.points.size(), 400u);
  EXPECT_GT(serial.samples_lost, 0u);
  EXPECT_GT(serial.commands_lost, 0u);

  const RunResult four = run_degraded_zone_cluster(4);
  expect_identical(serial, four);
}

// -- incremental context plane: the delta path must be invisible ---------

// Degraded telemetry + lossy actuation: loss and delay disarm the sample
// dedup (draws must stay aligned) but the delta-maintained contexts stay
// on, with most slots dirtied by lagging confirmations every cycle —
// exactly the regime where a missed invalidation would surface. Together
// with DegradedZonedRunIsBitIdenticalAcrossWorkerCounts (incremental,
// 1 vs 4 workers) this closes the {incremental, rebuild} x {1, 4} matrix.
TEST(ZoneTree, IncrementalMatchesRebuildUnderDegradedPlane) {
  const RunResult inc = run_degraded_zone_cluster(1, true);
  ASSERT_GT(inc.points.size(), 400u);
  const RunResult reb = run_degraded_zone_cluster(1, false);
  expect_identical(inc, reb);
  const RunResult reb4 = run_degraded_zone_cluster(4, false);
  expect_identical(inc, reb4);
}

/// Everything a spike episode externally produces: a per-cycle report
/// trace, the final DVFS levels, and the full Prometheus export with the
/// wall-clock phase spans (the only legitimately nondeterministic series)
/// stripped.
struct EpisodeResult {
  std::vector<std::string> trace;
  std::vector<hw::Level> levels;
  std::string prom;
  CappingManager::IncrementalStats stats;
};

std::string strip_spans(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    if (line.find("phase_seconds") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    pos = eol + 1;
  }
  return out;
}

/// A clean-plane (exact transport) Z=4 spike episode: shed leg, T_g-paced
/// restore leg, full quiescence — optionally with candidate churn and a
/// mid-episode warm restart folded in. Every externally visible output is
/// captured for exact comparison across {incremental, rebuild} x threads.
EpisodeResult run_spike_episode(const char* policy, bool incremental,
                                std::size_t threads, bool churn,
                                bool warm_restart) {
  Rig rig(64);
  for (std::size_t i = 0; i < rig.nodes.size(); ++i) {
    rig.set_util(rig.nodes[i],
                 0.70 + 0.25 * static_cast<double>(i % 16) / 16.0);
  }
  for (int j = 0; j < 8; ++j) rig.run_job(j + 1, 8 * 12);
  const auto draw = [&] {
    Watts total{0.0};
    for (const hw::Node& n : rig.nodes) total += n.estimated_power();
    return total;
  };

  CappingManagerParams p;
  p.thresholds.provision = draw() * 2.0;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.thresholds.adjust_period_cycles = 1'000'000;
  p.capping.steady_green_cycles = 3;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  p.collector.parallel_threshold = 8;
  p.collector.parallel_grain = 4;
  p.green_collect_stride = 1;
  p.incremental_context = incremental;
  ZoneTreeParams zp;
  zp.zone_count = 4;
  zp.redistribution = ZoneTreeParams::Redistribution::kProportional;
  const auto make_mgr = [&] {
    return std::make_unique<ZoneTreeManager>(
        zp, p, [policy] { return make_policy(policy); }, common::Rng(42));
  };
  auto mgr = make_mgr();
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<common::ThreadPool>(threads);
  mgr->set_thread_pool(pool.get());

  std::vector<hw::NodeId> all_ids;
  for (hw::NodeId i = 0; i < 64; ++i) all_ids.push_back(i);
  std::vector<hw::NodeId> shrunk = all_ids;
  for (const hw::NodeId id : {5, 17, 33}) {
    shrunk.erase(std::find(shrunk.begin(), shrunk.end(), id));
  }
  mgr->set_candidate_set(all_ids);
  obs::Registry reg;
  if (!warm_restart) mgr->bind_metrics(reg);

  EpisodeResult out;
  double now = 1.0;
  for (int i = 0; i < 4; ++i) {  // fill histories in green
    mgr->cycle(draw(), rig.nodes, rig.scheduler, Seconds{now});
    now += 1.0;
  }
  const Watts offset = p.thresholds.provision * 0.86 - draw();
  bool spiked = true;
  for (int c = 0; c < 48; ++c) {
    if (churn && c == 6) mgr->set_candidate_set(shrunk);
    if (churn && c == 12) mgr->set_candidate_set(all_ids);
    if (warm_restart && c == 9) {
      // Encode through the wire image, restore into a freshly built
      // controller, swap it in mid-episode — the paper's controller
      // replacement. Metrics bind to the replacement only (the lifetime
      // counters restart, identically for both modes).
      const std::string image = encode_checkpoint(mgr->checkpoint());
      auto restarted = make_mgr();
      restarted->set_thread_pool(pool.get());
      restarted->set_candidate_set(all_ids);
      restarted->restore(decode_tree_checkpoint(image));
      mgr = std::move(restarted);
      mgr->bind_metrics(reg);
    }
    const Watts measured = (spiked ? offset : Watts{0.0}) + draw();
    const ManagerReport r =
        mgr->cycle(measured, rig.nodes, rig.scheduler, Seconds{now});
    now += 1.0;
    if (spiked && r.state == PowerState::kGreen) spiked = false;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "s=%d tg=%zu tr=%zu ack=%zu fl=%zu st=%zu fb=%zu sk=%zu "
                  "df=%zu un=%zu az=%zu",
                  static_cast<int>(r.state), r.targets, r.transitions, r.acks,
                  r.commands_in_flight, r.stale_nodes, r.fallback_nodes,
                  r.skipped_targets, r.deferred_targets, r.unresponsive_nodes,
                  mgr->zones_active_last_cycle());
    out.trace.emplace_back(line);
  }
  for (const hw::Node& n : rig.nodes) out.levels.push_back(n.level());
  out.prom = strip_spans(reg.prometheus_text());
  for (std::size_t z = 0; z < mgr->zone_count(); ++z) {
    const CappingManager::IncrementalStats& st =
        mgr->zone(z).incremental_stats();
    out.stats.full_builds += st.full_builds;
    out.stats.delta_builds += st.delta_builds;
    out.stats.noop_builds += st.noop_builds;
    out.stats.dirty_slots += st.dirty_slots;
  }
  return out;
}

void expect_episode_identical(const EpisodeResult& a, const EpisodeResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "cycle " << i;
  }
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.prom, b.prom);
}

TEST(ZoneTree, IncrementalEpisodeMatchesRebuildBitForBit) {
  const EpisodeResult inc = run_spike_episode("mpc-c", true, 1, false, false);
  // The delta plane actually engaged: quiet cycles resolved as no-ops and
  // delta builds dominate the full assemblies.
  EXPECT_GT(inc.stats.noop_builds, 0u);
  EXPECT_GT(inc.stats.delta_builds, inc.stats.full_builds);
  const EpisodeResult reb = run_spike_episode("mpc-c", false, 1, false, false);
  EXPECT_EQ(reb.stats.delta_builds, 0u);
  expect_episode_identical(inc, reb);
  // Worker count must not leak into the merge: the same episode, sharded
  // four ways, in both modes.
  const EpisodeResult inc4 = run_spike_episode("mpc-c", true, 4, false, false);
  expect_episode_identical(inc, inc4);
  const EpisodeResult reb4 = run_spike_episode("mpc-c", false, 4, false, false);
  expect_episode_identical(inc, reb4);
}

// Thermal policies read board temperature, which drifts with sim-time
// without ever passing a pool mutator — the one field the state-epoch
// fast path cannot vouch for. ht-c must still be bit-identical.
TEST(ZoneTree, ThermalPolicyEpisodeMatchesRebuild) {
  const EpisodeResult inc = run_spike_episode("ht-c", true, 1, false, false);
  const EpisodeResult reb = run_spike_episode("ht-c", false, 1, false, false);
  expect_episode_identical(inc, reb);
}

// Candidate churn mid-episode: slots move, appear and vanish under the
// persistent contexts (the presence-flip path falls back to a full
// merge); the change-tracking state has to travel with the histories.
TEST(ZoneTree, CandidateChurnEpisodeMatchesRebuild) {
  const EpisodeResult inc = run_spike_episode("mpc-c", true, 1, true, false);
  const EpisodeResult reb = run_spike_episode("mpc-c", false, 1, true, false);
  expect_episode_identical(inc, reb);
  const EpisodeResult inc4 = run_spike_episode("mpc-c", true, 4, true, false);
  expect_episode_identical(inc, inc4);
}

// A warm restart replaces the controller mid-episode: the replacement
// starts with cold persistent contexts and must rebuild, then re-enter
// the delta path, without its decisions drifting from the rebuild plane.
TEST(ZoneTree, WarmRestartEpisodeMatchesRebuild) {
  const EpisodeResult inc = run_spike_episode("mpc-c", true, 1, false, true);
  const EpisodeResult reb = run_spike_episode("mpc-c", false, 1, false, true);
  expect_episode_identical(inc, reb);
}

// The drain-length regression the bench gates on wall clock, pinned down
// functionally at 8k nodes: a demand step must reach all-zones-quiescent
// in bounded cycles on the delta path, and a second, context-warm episode
// must take exactly as long (the persistent contexts do not accumulate
// state that changes decisions).
TEST(ZoneTree, DemandStepDrainsInBoundedCyclesOnTheDeltaPath) {
  Rig rig(8192);
  for (std::size_t i = 0; i < rig.nodes.size(); ++i) {
    rig.set_util(rig.nodes[i],
                 0.70 + 0.25 * static_cast<double>(i % 16) / 16.0);
  }
  for (int j = 0; j < 64; ++j) rig.run_job(j + 1, 128 * 12);
  const auto draw = [&] {
    Watts total{0.0};
    for (const hw::Node& n : rig.nodes) total += n.estimated_power();
    return total;
  };
  CappingManagerParams p;
  p.thresholds.provision = draw() * 2.0;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.thresholds.adjust_period_cycles = 1'000'000;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  p.green_collect_stride = 1;
  p.incremental_context = true;
  ZoneTreeParams zp;
  zp.zone_count = 8;
  zp.redistribution = ZoneTreeParams::Redistribution::kProportional;
  ZoneTreeManager mgr(
      zp, p, [] { return make_policy("mpc-c"); }, common::Rng(42));
  std::vector<hw::NodeId> ids;
  for (hw::NodeId i = 0; i < 8192; ++i) ids.push_back(i);
  mgr.set_candidate_set(ids);

  double now = 1.0;
  for (int i = 0; i < 4; ++i) {
    mgr.cycle(draw(), rig.nodes, rig.scheduler, Seconds{now});
    now += 1.0;
  }
  const auto episode = [&] {
    const Watts offset = p.thresholds.provision * 0.845 - draw();
    bool spiked = true;
    int cycles = 0;
    while (cycles < 64) {
      const Watts measured = (spiked ? offset : Watts{0.0}) + draw();
      const ManagerReport r =
          mgr.cycle(measured, rig.nodes, rig.scheduler, Seconds{now});
      now += 1.0;
      ++cycles;
      if (spiked && r.state == PowerState::kGreen) spiked = false;
      if (!spiked && mgr.zones_active_last_cycle() == 0) break;
    }
    return cycles;
  };
  const int cold = episode();
  EXPECT_LT(cold, 64) << "demand step never reached quiescence";
  const int warm = episode();
  EXPECT_EQ(cold, warm);
  CappingManager::IncrementalStats total;
  for (std::size_t z = 0; z < mgr.zone_count(); ++z) {
    const CappingManager::IncrementalStats& st =
        mgr.zone(z).incremental_stats();
    total.full_builds += st.full_builds;
    total.delta_builds += st.delta_builds;
    total.noop_builds += st.noop_builds;
    total.dirty_slots += st.dirty_slots;
  }
  // The episodes ran on the delta path: quiet drain cycles resolved as
  // no-ops, and the dirty waves touched only the shed cohort — not the
  // whole candidate set every active cycle.
  EXPECT_GT(total.noop_builds, 0u);
  EXPECT_GT(total.delta_builds, total.full_builds);
  EXPECT_LT(total.dirty_slots,
            static_cast<std::uint64_t>(cold + warm) * 8192u / 2u);
}

}  // namespace
}  // namespace pcap::power
