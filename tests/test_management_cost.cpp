#include "telemetry/management_cost.hpp"

#include <gtest/gtest.h>

namespace pcap::telemetry {
namespace {

TEST(ManagementCost, ZeroNodesCostsBaseOnly) {
  const ManagementCostModel m;
  EXPECT_DOUBLE_EQ(m.cycle_cost_us(0, 0), m.params().base_us);
}

TEST(ManagementCost, GrowsWithCandidates) {
  const ManagementCostModel m;
  double prev = 0.0;
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const double cost = m.cycle_cost_us(n, 10);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(ManagementCost, SuperLinearInCandidates) {
  // Figure 5's key claim: cost grows non-linearly with |A_candidate|.
  // Doubling n (with jobs proportional to n) must more than double cost
  // net of the fixed base.
  const ManagementCostModel m;
  const double base = m.params().base_us;
  const double c64 = m.cycle_cost_us(64, 8) - base;
  const double c128 = m.cycle_cost_us(128, 16) - base;
  EXPECT_GT(c128, 2.0 * c64);
}

TEST(ManagementCost, GrowsWithJobs) {
  const ManagementCostModel m;
  EXPECT_GT(m.cycle_cost_us(64, 20), m.cycle_cost_us(64, 5));
}

TEST(ManagementCost, UtilizationIsCostOverPeriod) {
  const ManagementCostModel m;
  const double cost_us = m.cycle_cost_us(32, 4);
  EXPECT_NEAR(m.cpu_utilization(32, 4, Seconds{1.0}), cost_us * 1e-6, 1e-12);
  EXPECT_NEAR(m.cpu_utilization(32, 4, Seconds{2.0}), cost_us * 1e-6 / 2.0,
              1e-12);
}

TEST(ManagementCost, BadPeriodThrows) {
  const ManagementCostModel m;
  EXPECT_THROW(m.cpu_utilization(1, 1, Seconds{0.0}), std::invalid_argument);
}

TEST(ManagementCost, NegativeCoefficientThrows) {
  ManagementCostParams p;
  p.collect_us_per_node = -1.0;
  EXPECT_THROW(ManagementCostModel{p}, std::invalid_argument);
}

TEST(ManagementCost, SingleNodeAvoidsLogZero) {
  const ManagementCostModel m;
  EXPECT_GT(m.cycle_cost_us(1, 0), m.params().base_us);
}

}  // namespace
}  // namespace pcap::telemetry
