// The persistent job -> candidate-node index that feeds the manager's
// context assembly: it must mirror the scheduler's running set exactly
// through job churn, and its filtered node lists must track candidate-set
// churn — including the cases where that changes what the policies see
// (a job finishing mid-degradation, a job losing its last candidate node,
// a node's level reset refreshing the cached per-job saving).
#include "power/job_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/node_spec.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"
#include "workload/npb.hpp"

namespace pcap::power {
namespace {

sched::Scheduler make_sched(int nodes) {
  return sched::Scheduler(std::vector<int>(static_cast<std::size_t>(nodes), 12),
                          {}, common::Rng(3));
}

workload::Job make_job(workload::JobId id, int nprocs) {
  return workload::Job(id,
                       workload::npb_by_name("lu", workload::NpbClass::kC),
                       nprocs, Seconds{0.0});
}

void finish_job(sched::Scheduler& s, workload::JobId id) {
  workload::Job* job = s.find(id);
  ASSERT_NE(job, nullptr);
  double t = 0.0;
  while (job->state() == workload::JobState::kRunning) {
    t += 600.0;
    job->advance(Seconds{600.0}, 1.0, Seconds{t});
  }
  s.on_job_finished(id);
}

std::vector<workload::JobId> entry_ids(const JobIndex& idx) {
  std::vector<workload::JobId> out;
  for (const JobIndex::Entry& e : idx.entries()) out.push_back(e.id);
  return out;
}

TEST(JobIndex, MirrorsRunningOrderThroughChurn) {
  sched::Scheduler s = make_sched(8);
  JobIndex idx;
  idx.set_candidate_set({0, 1, 2, 3, 4, 5, 6, 7});

  s.submit(make_job(1, 24));  // nodes 0,1
  s.submit(make_job(2, 12));  // node 2
  s.submit(make_job(3, 24));  // nodes 3,4
  s.try_launch(Seconds{0.0});
  idx.sync(s);
  EXPECT_EQ(entry_ids(idx), s.running_jobs());

  // Finishing the middle job must erase in place, keeping order — the
  // context's job views (and therefore stable-sort tie-breaking) follow
  // running order.
  finish_job(s, 2);
  idx.sync(s);
  EXPECT_EQ(entry_ids(idx), s.running_jobs());
  EXPECT_EQ(entry_ids(idx), (std::vector<workload::JobId>{1, 3}));

  // A new job reuses the freed capacity and appends at the back.
  s.submit(make_job(4, 12));
  s.try_launch(Seconds{1.0});
  idx.sync(s);
  EXPECT_EQ(entry_ids(idx), (std::vector<workload::JobId>{1, 3, 4}));
}

TEST(JobIndex, CandidateFilterPreservesJobNodeOrder) {
  sched::Scheduler s = make_sched(4);
  JobIndex idx;
  idx.set_candidate_set({1, 3});  // every other node monitored

  s.submit(make_job(1, 48));  // whole machine: nodes 0..3
  s.try_launch(Seconds{0.0});
  idx.sync(s);

  ASSERT_EQ(idx.entries().size(), 1u);
  const JobIndex::Entry& e = idx.entries()[0];
  EXPECT_EQ(e.nodes, s.find(1)->nodes());
  // Intersection with A_candidate, in Nodes(J) order — the aggregation
  // order the context build sums per-job power in.
  EXPECT_EQ(e.candidate_nodes, (std::vector<hw::NodeId>{1, 3}));
}

TEST(JobIndex, CandidateChurnRefiltersExistingEntries) {
  sched::Scheduler s = make_sched(4);
  JobIndex idx;
  idx.set_candidate_set({0, 1, 2, 3});

  s.submit(make_job(1, 24));  // nodes 0,1
  s.try_launch(Seconds{0.0});
  idx.sync(s);
  EXPECT_EQ(idx.entries()[0].candidate_nodes,
            (std::vector<hw::NodeId>{0, 1}));

  // Shrink the candidate set under a running job: the entry refilters on
  // the next sync, down to empty when its last candidate node is gone.
  idx.set_candidate_set({1});
  idx.sync(s);
  EXPECT_EQ(idx.entries()[0].candidate_nodes, (std::vector<hw::NodeId>{1}));

  idx.set_candidate_set({2, 3});
  idx.sync(s);
  EXPECT_TRUE(idx.entries()[0].candidate_nodes.empty());
  EXPECT_EQ(idx.entries()[0].nodes.size(), 2u);  // membership is immutable
}

TEST(JobIndex, SyncIsIdempotent) {
  sched::Scheduler s = make_sched(4);
  JobIndex idx;
  idx.set_candidate_set({0, 1, 2, 3});
  s.submit(make_job(1, 24));
  s.try_launch(Seconds{0.0});

  idx.sync(s);
  const std::size_t cursor = idx.event_cursor();
  idx.sync(s);
  EXPECT_EQ(idx.event_cursor(), cursor);
  EXPECT_EQ(idx.entries().size(), 1u);
}

// -- through the manager -------------------------------------------------
//
// The same invariants, observed where they matter: the PolicyContext the
// capping engine selects from.

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void load(double utilization) {
    for (auto& n : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = utilization;
      op.mem_used = n.spec().mem_total * 0.4;
      op.mem_total = n.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = n.spec().nic_bandwidth;
      n.set_operating_point(op);
      n.set_busy(true);
    }
  }

  void run_job(workload::JobId id, int nprocs) {
    scheduler.submit(make_job(id, nprocs));
    scheduler.try_launch(Seconds{0.0});
  }
};

CappingManagerParams quiet_params() {
  CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  // These tests inspect build_context right after single green cycles;
  // collect every cycle so the context is always populated.
  p.green_collect_stride = 1;
  return p;
}

TEST(CappingManagerJobIndex, JobFinishingMidDegradationLeavesContext) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);  // nodes 0,1
  rig.run_job(2, 24);  // nodes 2,3
  CappingManager m(quiet_params(), make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});

  // Yellow cycle: the policy degrades the most power consuming job, so
  // A_degraded is populated when job 1 finishes.
  const auto r =
      m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  ASSERT_EQ(r.state, PowerState::kYellow);
  ASSERT_FALSE(m.engine().degraded().empty());

  PolicyContext ctx =
      m.build_context(Watts{1700.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 2u);

  finish_job(rig.scheduler, 1);
  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  ctx = m.build_context(Watts{1700.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 1u);
  EXPECT_EQ(ctx.jobs[0].id, 2u);
}

TEST(CappingManagerJobIndex, CandidateChurnDropsJobFromContext) {
  Rig rig(4);
  rig.load(0.8);
  rig.run_job(1, 24);  // nodes 0,1
  rig.run_job(2, 24);  // nodes 2,3
  CappingManager m(quiet_params(), make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});

  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  PolicyContext ctx = m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 2u);

  // Remove job 1's nodes from A_candidate mid-run: the job must vanish
  // from the context even though it is still running.
  m.set_candidate_set({2, 3});
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  ctx = m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 1u);
  EXPECT_EQ(ctx.jobs[0].id, 2u);
  EXPECT_EQ(ctx.jobs[0].nodes, (std::vector<hw::NodeId>{2, 3}));
}

TEST(CappingManagerJobIndex, LevelResetRefreshesPerJobSaving) {
  Rig rig(2);
  rig.load(0.8);
  rig.run_job(1, 24);  // nodes 0,1
  CappingManager m(quiet_params(), make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  PolicyContext ctx = m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 1u);
  const Watts saving_before = ctx.jobs[0].saving_one_level;
  ASSERT_GT(saving_before, Watts{0.0});

  // The node "reboots" to a throttled firmware state: its level drops
  // outside the manager's control. The next collected sample must flow
  // through the index into a refreshed per-job saving — nothing about the
  // old level may stick in a cache.
  rig.nodes[0].set_level(3);
  rig.nodes[1].set_level(3);
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  ctx = m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 1u);
  EXPECT_NE(ctx.jobs[0].saving_one_level, saving_before);

  // Internal consistency: the job saving is exactly the sum over its
  // throttleable views at the *new* level.
  Watts expect{0.0};
  for (const hw::NodeId id : ctx.jobs[0].nodes) {
    const NodeView* nv = ctx.node(id);
    ASSERT_NE(nv, nullptr);
    EXPECT_EQ(nv->level, 3);
    expect += nv->power - nv->power_one_level_down;
  }
  EXPECT_EQ(ctx.jobs[0].saving_one_level, expect);
}

}  // namespace
}  // namespace pcap::power
