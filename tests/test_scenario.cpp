#include "cluster/scenario.hpp"

#include <gtest/gtest.h>

namespace pcap::cluster {
namespace {

TEST(PaperScenario, MatchesTestbedDescription) {
  const ExperimentConfig cfg = paper_scenario();
  // §V.A: 128 Tianhe-1A nodes with 10-level DVFS; §V.C: T_g = 10, 12 h
  // measured runs; §III.A margins 7 %/16 %.
  EXPECT_EQ(cfg.cluster.num_nodes, 128u);
  EXPECT_EQ(cfg.cluster.spec->ladder.num_levels(), 10);
  EXPECT_EQ(cfg.cluster.spec->total_cores(), 12);
  EXPECT_EQ(cfg.capping.steady_green_cycles, 10);
  EXPECT_DOUBLE_EQ(cfg.measured.value(), 12 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.red_margin, 0.07);
  EXPECT_DOUBLE_EQ(cfg.yellow_margin, 0.16);
  EXPECT_EQ(cfg.cluster.npb_class, workload::NpbClass::kD);
  EXPECT_EQ(cfg.manager, "mpc");
}

TEST(PaperScenario, SeedPropagates) {
  EXPECT_EQ(paper_scenario(99).cluster.seed, 99u);
  EXPECT_NE(paper_scenario(1).cluster.seed, paper_scenario(2).cluster.seed);
}

TEST(SmallScenario, IsFastVariant) {
  const ExperimentConfig cfg = small_scenario();
  EXPECT_LT(cfg.cluster.num_nodes, paper_scenario().cluster.num_nodes);
  EXPECT_EQ(cfg.cluster.npb_class, workload::NpbClass::kC);
  EXPECT_LT(cfg.measured.value(), paper_scenario().measured.value());
}

TEST(HeterogeneousScenario, MixesNodeTypes) {
  const ExperimentConfig cfg = heterogeneous_scenario();
  ASSERT_FALSE(cfg.cluster.node_specs.empty());
  bool has_tianhe = false;
  bool has_low_power = false;
  for (const auto& spec : cfg.cluster.node_specs) {
    if (spec->name == "tianhe1a") has_tianhe = true;
    if (spec->name == "low_power") has_low_power = true;
  }
  EXPECT_TRUE(has_tianhe);
  EXPECT_TRUE(has_low_power);
}

TEST(LossyActuationScenario, DegradesOnlyTheCommandPath) {
  const ExperimentConfig cfg = lossy_actuation_scenario();
  // The actuation plane is degraded...
  EXPECT_TRUE(cfg.actuation.enabled());
  EXPECT_GT(cfg.actuation.command_loss_rate, 0.0);
  EXPECT_GT(cfg.actuation.delivery_delay_cycles, 0);
  EXPECT_GT(cfg.actuation.reboot_rate, 0.0);
  EXPECT_NO_THROW(cfg.actuation.validate());
  EXPECT_NO_THROW(cfg.reconciliation.validate());
  // ...telemetry stays healthy: the scenario isolates the command path.
  EXPECT_FALSE(cfg.faults.enabled());
  EXPECT_DOUBLE_EQ(cfg.transport.loss_rate, 0.0);
  // The first retry must sit above the ack latency (delivery delay + one
  // collection cycle would ack a healthy command) — otherwise the manager
  // re-sends commands that are merely slow, not lost.
  EXPECT_GE(cfg.reconciliation.retry_backoff_base_cycles, 2);
}

TEST(Scenarios, AllBuildClustersWithoutThrowing) {
  EXPECT_NO_THROW(Cluster{paper_scenario().cluster});
  EXPECT_NO_THROW(Cluster{small_scenario().cluster});
  EXPECT_NO_THROW(Cluster{heterogeneous_scenario().cluster});
  EXPECT_NO_THROW(Cluster{faulty_telemetry_scenario().cluster});
  EXPECT_NO_THROW(Cluster{lossy_actuation_scenario().cluster});
}

}  // namespace
}  // namespace pcap::cluster
