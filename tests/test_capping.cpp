#include "power/capping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "power/policies_state_based.hpp"

namespace pcap::power {
namespace {

// A minimal deterministic policy for exercising Algorithm 1 in isolation.
class FixedPolicy final : public TargetSelectionPolicy {
 public:
  explicit FixedPolicy(std::vector<hw::NodeId> targets)
      : targets_(std::move(targets)) {}
  [[nodiscard]] std::string name() const override { return "fixed"; }
  std::vector<hw::NodeId> select(const PolicyContext& ctx) override {
    std::vector<hw::NodeId> valid;
    for (const hw::NodeId id : targets_) {
      const NodeView* nv = ctx.node(id);
      if (nv != nullptr && nv->busy && !nv->at_lowest) valid.push_back(id);
    }
    return valid;
  }

 private:
  std::vector<hw::NodeId> targets_;
};

/// Builds a context of `n` busy candidate nodes at the given level
/// (10-level ladder).
PolicyContext make_ctx(int n, hw::Level level, Watts power = Watts{1000.0},
                       Watts p_low = Watts{900.0}) {
  PolicyContext ctx;
  ctx.system_power = power;
  ctx.p_low = p_low;
  for (int i = 0; i < n; ++i) {
    NodeView nv;
    nv.id = static_cast<hw::NodeId>(i);
    nv.level = level;
    nv.highest_level = 9;
    nv.at_lowest = level == 0;
    nv.busy = true;
    nv.power = Watts{300.0};
    nv.power_one_level_down = Watts{285.0};
    ctx.nodes.push_back(nv);
  }
  ctx.index_nodes();
  return ctx;
}

CappingParams tg(std::int64_t cycles) {
  CappingParams p;
  p.steady_green_cycles = cycles;
  return p;
}

TEST(Capping, GreenWithNothingDegradedDoesNothing) {
  CappingEngine e(tg(3));
  FixedPolicy policy({});
  const auto ctx = make_ctx(4, 9);
  const CycleDecision d =
      e.cycle(Watts{100.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.state, PowerState::kGreen);
  EXPECT_TRUE(d.commands.empty());
  EXPECT_EQ(e.green_timer(), 1);
}

TEST(Capping, YellowDegradesPolicyTargetsByOneLevel) {
  CappingEngine e(tg(3));
  FixedPolicy policy({0, 2});
  const auto ctx = make_ctx(4, 9);
  const CycleDecision d =
      e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.state, PowerState::kYellow);
  ASSERT_EQ(d.commands.size(), 2u);
  EXPECT_EQ(d.commands[0], (LevelCommand{0, 8}));
  EXPECT_EQ(d.commands[1], (LevelCommand{2, 8}));
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{0, 2}));
  EXPECT_EQ(e.green_timer(), 0);
}

TEST(Capping, RedFloorsEveryCandidate) {
  CappingEngine e(tg(3));
  FixedPolicy policy({});
  const auto ctx = make_ctx(5, 6);
  const CycleDecision d =
      e.cycle(Watts{999.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.state, PowerState::kRed);
  ASSERT_EQ(d.commands.size(), 5u);
  for (const LevelCommand& c : d.commands) EXPECT_EQ(c.level, 0);
  EXPECT_EQ(e.degraded().size(), 5u);  // A_degraded := A_candidate
}

TEST(Capping, GreenTimerMustReachTgBeforeRestore) {
  CappingEngine e(tg(3));
  FixedPolicy policy({0});
  auto ctx = make_ctx(2, 9);
  // One yellow cycle degrades node 0 to level 8.
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ctx = make_ctx(2, 9);
  ctx.nodes[0].level = 8;

  // Two green cycles: timer 1, 2 — below T_g = 3, no restore.
  for (int i = 0; i < 2; ++i) {
    const auto d =
        e.cycle(Watts{100.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
    EXPECT_TRUE(d.commands.empty());
  }
  // Third green cycle: steady green, restore by one level.
  const auto d =
      e.cycle(Watts{100.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0], (LevelCommand{0, 9}));
  // Node reached the top level: it leaves A_degraded.
  EXPECT_TRUE(e.degraded().empty());
}

TEST(Capping, RestoreContinuesEveryGreenCycleOnceSteady) {
  CappingEngine e(tg(2));
  FixedPolicy policy({0});
  // Degrade node 0 twice: level 9 -> 8 -> 7.
  auto ctx = make_ctx(1, 9);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ctx = make_ctx(1, 8);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ctx = make_ctx(1, 7);

  // Green cycles: restore fires at timer = 2 and every green cycle after.
  auto d = e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_TRUE(d.commands.empty());  // timer = 1
  d = e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ASSERT_EQ(d.commands.size(), 1u);  // timer = 2: restore to 8
  EXPECT_EQ(d.commands[0].level, 8);
  EXPECT_FALSE(e.degraded().empty());  // not yet at the top

  ctx = make_ctx(1, 8);
  d = e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ASSERT_EQ(d.commands.size(), 1u);  // restore to 9 and leave A_degraded
  EXPECT_EQ(d.commands[0].level, 9);
  EXPECT_TRUE(e.degraded().empty());
}

TEST(Capping, YellowResetsGreenTimer) {
  CappingEngine e(tg(3));
  FixedPolicy policy({0});
  auto ctx = make_ctx(1, 9);
  e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.green_timer(), 1);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.green_timer(), 0);
}

TEST(Capping, RedResetsGreenTimer) {
  CappingEngine e(tg(3));
  FixedPolicy policy({});
  const auto ctx = make_ctx(1, 9);
  e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  e.cycle(Watts{9999.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.green_timer(), 0);
}

TEST(Capping, DepartedCandidateLeavesDegradedSet) {
  CappingEngine e(tg(1));
  FixedPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.degraded().size(), 2u);
  // Node 1 leaves the candidate set (e.g. now runs a privileged task).
  auto ctx_one = make_ctx(1, 8);
  e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx_one);
  for (const hw::NodeId id : e.degraded()) EXPECT_NE(id, 1u);
}

// A policy that returns whatever ids it was built with, valid or not —
// standing in for selection that ran ahead of (or against) the telemetry.
class BlindPolicy final : public TargetSelectionPolicy {
 public:
  explicit BlindPolicy(std::vector<hw::NodeId> targets)
      : targets_(std::move(targets)) {}
  [[nodiscard]] std::string name() const override { return "blind"; }
  std::vector<hw::NodeId> select(const PolicyContext&) override {
    return targets_;
  }

 private:
  std::vector<hw::NodeId> targets_;
};

TEST(Capping, PolicyReturningIdleNodeIsSkippedNotFatal) {
  CappingEngine e(tg(3));
  BlindPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  ctx.nodes[0].busy = false;  // idle node must not be targeted (§III.B-4)
  const CycleDecision d =
      e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  // The invalid target is dropped; the valid one still lands.
  EXPECT_EQ(d.skipped, 1u);
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0], (LevelCommand{1, 8}));
  EXPECT_EQ(e.skipped_targets(), 1u);
}

TEST(Capping, PolicyReturningFlooredNodeIsSkippedNotFatal) {
  CappingEngine e(tg(3));
  BlindPolicy policy({0});
  const auto ctx = make_ctx(1, 0);  // already at the lowest level
  const CycleDecision d =
      e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.skipped, 1u);
  EXPECT_TRUE(d.commands.empty());
  EXPECT_TRUE(e.degraded().empty());
}

TEST(Capping, PolicyReturningUnknownNodeIsSkippedNotFatal) {
  CappingEngine e(tg(3));
  BlindPolicy policy({7});  // not in the candidate set
  const auto ctx = make_ctx(2, 9);
  const CycleDecision d =
      e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.skipped, 1u);
  EXPECT_TRUE(d.commands.empty());
}

TEST(Capping, StaleTargetIsSkippedAndCounted) {
  CappingEngine e(tg(3));
  BlindPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  ctx.nodes[0].stale = true;  // the manager flagged node 0's view as stale
  const CycleDecision d =
      e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.skipped, 1u);
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0].node, 1u);
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{1}));
}

// Regression: red_cycle used to emit LevelCommand{id, 0} for *every*
// candidate — including nodes already at the floor — and marked them all
// degraded, so a repeated red state inflated target counts and "restored"
// nodes the engine had never lowered.
TEST(Capping, RedIsIdempotentAtTheFloor) {
  CappingEngine e(tg(3));
  FixedPolicy policy({});
  auto ctx = make_ctx(3, 6);
  auto d = e.cycle(Watts{999.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.commands.size(), 3u);

  // Actuated: everyone is at the floor now. A second red cycle must not
  // re-command anyone.
  ctx = make_ctx(3, 0);
  d = e.cycle(Watts{999.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_TRUE(d.commands.empty());
  EXPECT_EQ(e.degraded().size(), 3u);  // still tracked for restore
}

TEST(Capping, RedDoesNotAdoptNodesAlreadyAtTheFloor) {
  CappingEngine e(tg(3));
  FixedPolicy policy({});
  auto ctx = make_ctx(2, 6);
  ctx.nodes[1].level = 0;  // floored by someone else, not this engine
  ctx.nodes[1].at_lowest = true;
  const auto d = e.cycle(Watts{999.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0].node, 0u);
  // Node 1 never entered A_degraded: the engine will not later "restore"
  // it above a state it never set.
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{0}));
}

TEST(Capping, SteadyGreenSkipsStaleNodesButKeepsThemDegraded) {
  CappingEngine e(tg(1));
  FixedPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.degraded().size(), 2u);

  ctx = make_ctx(2, 8);
  ctx.nodes[0].stale = true;
  const auto d = e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  // Only the fresh node is restored; the stale one stays in A_degraded
  // until its telemetry comes back.
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0], (LevelCommand{1, 9}));
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{0}));
}

TEST(Capping, YellowSkipsNodeWithCommandInFlight) {
  CappingEngine e(tg(3));
  BlindPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  // Node 0 has an unacked command outstanding: throttling it again would
  // act on a level the manager only believes, not knows.
  ctx.nodes[0].command_in_flight = true;
  const CycleDecision d =
      e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(d.deferred_in_flight, 1u);
  EXPECT_EQ(d.skipped, 0u);  // a deferral is routine, not a bad target
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0], (LevelCommand{1, 8}));
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{1}));
}

TEST(Capping, SteadyGreenSkipsInFlightNodesButKeepsThemDegraded) {
  CappingEngine e(tg(1));
  FixedPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.degraded().size(), 2u);

  ctx = make_ctx(2, 8);
  ctx.nodes[0].command_in_flight = true;
  const auto d = e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  // Only the settled node is restored; the one with a command in flight
  // stays in A_degraded until its actuation state is known again.
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0], (LevelCommand{1, 9}));
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{0}));
}

// Candidate churn mid-degradation: a throttled node that leaves the
// candidate set (privileged job, reselection) is pruned from A_degraded —
// and when it rejoins, still at its throttled level, steady green must
// NOT restore it: the engine only restores levels it remembers lowering,
// and the pruning deliberately forgot this one ("no longer ours").
TEST(Capping, RejoiningNodeIsNotRestoredAbovePreThrottleLevel) {
  CappingEngine e(tg(1));
  FixedPolicy policy({0, 1});
  auto ctx = make_ctx(2, 9);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{0, 1}));

  // Node 1 leaves A_candidate while degraded (level 8); the yellow
  // pressure keeps node 0 degraded (8 -> 7) through the churn.
  auto ctx_one = make_ctx(1, 8);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx_one);
  EXPECT_EQ(e.degraded(), (std::set<hw::NodeId>{0}));

  // Node 1 rejoins, still at its throttled level 8, and the system goes
  // green. Every restore pass may lift node 0 (which the engine still
  // owns) but must never command node 1 above the level it rejoined with.
  ctx = make_ctx(2, 9);
  ctx.nodes[0].level = 7;
  ctx.nodes[1].level = 8;
  for (int i = 0; i < 5; ++i) {
    const auto d =
        e.cycle(Watts{0.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
    for (const LevelCommand& c : d.commands) {
      EXPECT_NE(c.node, 1u);
      ctx.nodes[c.node].level = c.level;  // actuate
    }
  }
  EXPECT_EQ(ctx.nodes[0].level, 9);  // node 0 fully restored...
  EXPECT_EQ(ctx.nodes[1].level, 8);  // ...node 1 left where it rejoined
  EXPECT_TRUE(e.degraded().empty());
}

TEST(Capping, ResetForgetsHistory) {
  CappingEngine e(tg(3));
  FixedPolicy policy({0});
  const auto ctx = make_ctx(1, 9);
  e.cycle(Watts{920.0}, Watts{900.0}, Watts{950.0}, policy, ctx);
  e.reset();
  EXPECT_TRUE(e.degraded().empty());
  EXPECT_EQ(e.green_timer(), 0);
}

TEST(Capping, NonPositiveTgThrows) {
  EXPECT_THROW(CappingEngine(tg(0)), std::invalid_argument);
}

// Property: under random power sequences with the MPC policy, the engine
// never emits a command outside the candidate set, never emits a level
// below 0 or above the node's top, and A_degraded only contains
// candidates.
class CappingRandomWalk : public ::testing::TestWithParam<int> {};

TEST_P(CappingRandomWalk, CommandsAlwaysValid) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  CappingEngine e(tg(4));
  MostPowerConsumingJob policy;
  std::vector<hw::Level> levels(6, 9);

  for (int step = 0; step < 400; ++step) {
    PolicyContext ctx;
    ctx.system_power = Watts{rng.uniform(500.0, 1100.0)};
    ctx.p_low = Watts{900.0};
    for (int i = 0; i < 6; ++i) {
      NodeView nv;
      nv.id = static_cast<hw::NodeId>(i);
      nv.level = levels[static_cast<std::size_t>(i)];
      nv.highest_level = 9;
      nv.at_lowest = nv.level == 0;
      nv.busy = rng.bernoulli(0.8);
      nv.power = Watts{rng.uniform(150.0, 400.0)};
      nv.power_one_level_down = nv.power - Watts{15.0};
      ctx.nodes.push_back(nv);
    }
    ctx.index_nodes();
    // One job spanning nodes 0-2, another 3-5.
    for (int j = 0; j < 2; ++j) {
      JobView jv;
      jv.id = static_cast<workload::JobId>(j);
      for (int i = j * 3; i < j * 3 + 3; ++i) {
        jv.nodes.push_back(static_cast<hw::NodeId>(i));
        jv.power += ctx.nodes[static_cast<std::size_t>(i)].power;
      }
      ctx.jobs.push_back(jv);
    }

    const CycleDecision d = e.cycle(ctx.system_power, Watts{900.0},
                                    Watts{1000.0}, policy, ctx);
    std::set<hw::NodeId> seen;
    for (const LevelCommand& c : d.commands) {
      ASSERT_LT(c.node, 6u);
      ASSERT_GE(c.level, 0);
      ASSERT_LE(c.level, 9);
      ASSERT_TRUE(seen.insert(c.node).second) << "duplicate command";
      levels[c.node] = c.level;  // actuate
    }
    for (const hw::NodeId id : e.degraded()) ASSERT_LT(id, 6u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappingRandomWalk, ::testing::Range(1, 9));

}  // namespace
}  // namespace pcap::power
