#include "power/state.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace pcap::power {
namespace {

TEST(PowerState, GreenBelowLow) {
  EXPECT_EQ(classify_power(Watts{80.0}, Watts{100.0}, Watts{120.0}),
            PowerState::kGreen);
}

TEST(PowerState, YellowBetweenThresholds) {
  EXPECT_EQ(classify_power(Watts{110.0}, Watts{100.0}, Watts{120.0}),
            PowerState::kYellow);
}

TEST(PowerState, RedAtOrAboveHigh) {
  EXPECT_EQ(classify_power(Watts{120.0}, Watts{100.0}, Watts{120.0}),
            PowerState::kRed);
  EXPECT_EQ(classify_power(Watts{500.0}, Watts{100.0}, Watts{120.0}),
            PowerState::kRed);
}

TEST(PowerState, BoundariesArePaperExact) {
  // Green: P < P_L.  Yellow: P_L <= P < P_H.  Red: P >= P_H.
  EXPECT_EQ(classify_power(Watts{100.0}, Watts{100.0}, Watts{120.0}),
            PowerState::kYellow);
  EXPECT_EQ(classify_power(Watts{99.999}, Watts{100.0}, Watts{120.0}),
            PowerState::kGreen);
  EXPECT_EQ(classify_power(Watts{119.999}, Watts{100.0}, Watts{120.0}),
            PowerState::kYellow);
}

TEST(PowerState, EqualThresholdsHaveNoYellowBand) {
  EXPECT_EQ(classify_power(Watts{99.0}, Watts{100.0}, Watts{100.0}),
            PowerState::kGreen);
  EXPECT_EQ(classify_power(Watts{100.0}, Watts{100.0}, Watts{100.0}),
            PowerState::kRed);
}

TEST(PowerState, InvertedThresholdsThrow) {
  EXPECT_THROW(classify_power(Watts{1.0}, Watts{120.0}, Watts{100.0}),
               std::invalid_argument);
}

TEST(PowerState, Names) {
  EXPECT_STREQ(power_state_name(PowerState::kGreen), "green");
  EXPECT_STREQ(power_state_name(PowerState::kYellow), "yellow");
  EXPECT_STREQ(power_state_name(PowerState::kRed), "red");
}

// Property: classification is monotone in P for any valid thresholds.
class StateMonotone
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(StateMonotone, MonotoneInPower) {
  const auto [low, high] = GetParam();
  PowerState prev = PowerState::kGreen;
  for (double p = 0.0; p <= high * 1.5; p += high / 40.0) {
    const PowerState s = classify_power(Watts{p}, Watts{low}, Watts{high});
    EXPECT_GE(static_cast<int>(s), static_cast<int>(prev));
    prev = s;
  }
  EXPECT_EQ(prev, PowerState::kRed);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, StateMonotone,
                         ::testing::Values(std::make_tuple(84.0, 93.0),
                                           std::make_tuple(100.0, 100.0),
                                           std::make_tuple(10.0, 1000.0)));

}  // namespace
}  // namespace pcap::power
