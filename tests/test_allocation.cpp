#include "sched/allocation.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace pcap::sched {
namespace {

std::vector<hw::NodeId> free_ids(int n) {
  std::vector<hw::NodeId> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

TEST(Allocator, FirstFitTakesLowestIds) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(8, 12);
  const auto alloc = a.allocate(free_ids(8), cores, 30);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes, (std::vector<hw::NodeId>{0, 1, 2}));
  EXPECT_EQ(alloc->procs_per_node, (std::vector<int>{12, 12, 6}));
}

TEST(Allocator, ExactFit) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(4, 12);
  const auto alloc = a.allocate(free_ids(4), cores, 24);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes.size(), 2u);
  EXPECT_EQ(alloc->procs_per_node, (std::vector<int>{12, 12}));
}

TEST(Allocator, InsufficientCapacityReturnsNullopt) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(2, 12);
  EXPECT_FALSE(a.allocate(free_ids(2), cores, 25).has_value());
}

TEST(Allocator, EmptyFreeListReturnsNullopt) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(4, 12);
  EXPECT_FALSE(a.allocate({}, cores, 1).has_value());
}

TEST(Allocator, NonPositiveProcsThrows) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(2, 12);
  EXPECT_THROW(a.allocate(free_ids(2), cores, 0), std::invalid_argument);
}

TEST(Allocator, PerNodeCapWidensAllocation) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(16, 12);
  const auto alloc = a.allocate(free_ids(16), cores, 24, /*cap=*/3);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes.size(), 8u);  // 24 procs / 3 per node
  for (const int p : alloc->procs_per_node) EXPECT_LE(p, 3);
}

TEST(Allocator, CapLargerThanCoresIsHarmless) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(4, 12);
  const auto alloc = a.allocate(free_ids(4), cores, 24, /*cap=*/100);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes.size(), 2u);
}

TEST(Allocator, NegativeCapThrows) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores(2, 12);
  EXPECT_THROW(a.allocate(free_ids(2), cores, 8, -1), std::invalid_argument);
}

TEST(Allocator, HeterogeneousCores) {
  Allocator a(AllocationStrategy::kFirstFit, common::Rng(1));
  const std::vector<int> cores = {12, 8, 12, 8};
  const auto alloc = a.allocate(free_ids(4), cores, 22);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes, (std::vector<hw::NodeId>{0, 1, 2}));
  EXPECT_EQ(alloc->procs_per_node, (std::vector<int>{12, 8, 2}));
}

TEST(Allocator, RandomStrategyStillCoversDemand) {
  Allocator a(AllocationStrategy::kRandom, common::Rng(42));
  const std::vector<int> cores(10, 12);
  const auto alloc = a.allocate(free_ids(10), cores, 50);
  ASSERT_TRUE(alloc.has_value());
  int total = 0;
  std::set<hw::NodeId> unique;
  for (std::size_t i = 0; i < alloc->nodes.size(); ++i) {
    total += alloc->procs_per_node[i];
    unique.insert(alloc->nodes[i]);
  }
  EXPECT_EQ(total, 50);
  EXPECT_EQ(unique.size(), alloc->nodes.size());  // no duplicates
}

TEST(Allocator, RandomStrategyVariesSelection) {
  Allocator a(AllocationStrategy::kRandom, common::Rng(7));
  const std::vector<int> cores(20, 12);
  std::set<std::vector<hw::NodeId>> selections;
  for (int i = 0; i < 10; ++i) {
    selections.insert(a.allocate(free_ids(20), cores, 12)->nodes);
  }
  EXPECT_GT(selections.size(), 1u);
}

TEST(AllocationStrategyNames, AreStable) {
  EXPECT_STREQ(allocation_strategy_name(AllocationStrategy::kFirstFit),
               "first_fit");
  EXPECT_STREQ(allocation_strategy_name(AllocationStrategy::kRandom),
               "random");
}

}  // namespace
}  // namespace pcap::sched
