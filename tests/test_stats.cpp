#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace pcap::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(RunningStats, ShardedMergeMatchesSinglePassReference) {
  // Uneven shards (the shape a parallel sweep produces) merged in order
  // must reproduce the single-pass Welford moments exactly enough for
  // metric reporting, including min/max which are order-free.
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 1200; ++i) xs.push_back(rng.uniform(-50.0, 150.0));

  RunningStats single;
  for (const double x : xs) single.add(x);

  const std::size_t cuts[] = {0, 1, 17, 900, xs.size()};
  RunningStats merged;
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    RunningStats shard;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) shard.add(xs[i]);
    merged.merge(shard);
  }
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), single.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(merged.min(), single.min());
  EXPECT_DOUBLE_EQ(merged.max(), single.max());
  EXPECT_NEAR(merged.sum(), single.sum(), 1e-7);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TimeWeightedMean, UniformWeights) {
  TimeWeightedMean m;
  m.add(2.0, 1.0);
  m.add(4.0, 1.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
}

TEST(TimeWeightedMean, WeightsMatter) {
  TimeWeightedMean m;
  m.add(10.0, 3.0);
  m.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.mean(), 7.5);
  EXPECT_DOUBLE_EQ(m.total_time(), 4.0);
  EXPECT_DOUBLE_EQ(m.integral(), 30.0);
}

TEST(TimeWeightedMean, EmptyIsZero) {
  TimeWeightedMean m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(9.9);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
}

TEST(Histogram, BoundaryValuesFollowHalfOpenRange) {
  // The range is [lo, hi): x == lo is in-range (bin 0, no underflow);
  // x == hi is out of range (clamped to the last bin, counted overflow).
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(10.0);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, Reset) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bin(1), 0u);
}

TEST(PercentileSampler, ExactValues) {
  PercentileSampler p;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.25), 2.0);
}

TEST(PercentileSampler, Interpolates) {
  PercentileSampler p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 5.0);
}

TEST(PercentileSampler, EmptyReturnsZero) {
  PercentileSampler p;
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 0.0);
}

// Property sweep: RunningStats matches a naive two-pass computation for
// random data of varying sizes.
class RunningStatsProperty : public ::testing::TestWithParam<int> {};

TEST_P(RunningStatsProperty, MatchesTwoPass) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 10 + GetParam() * 37;
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= n;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace pcap::common
