#include "hw/node.hpp"

#include <gtest/gtest.h>

#include "hw/node_spec.hpp"

namespace pcap::hw {
namespace {

OperatingPoint busy_op(const NodeSpec& spec) {
  OperatingPoint op;
  op.cpu_utilization = 0.8;
  op.mem_used = spec.mem_total * 0.5;
  op.mem_total = spec.mem_total;
  op.nic_bytes = Bytes{1e9};
  op.tau = Seconds{1.0};
  op.nic_bandwidth = spec.nic_bandwidth;
  return op;
}

TEST(Node, StartsAtHighestLevelAndAmbient) {
  const Node n(0, tianhe1a_node_spec());
  EXPECT_TRUE(n.at_highest());
  EXPECT_FALSE(n.at_lowest());
  EXPECT_EQ(n.level(), 9);
  EXPECT_EQ(n.temperature(), n.spec().thermal.ambient);
  EXPECT_DOUBLE_EQ(n.relative_speed(), 1.0);
}

TEST(Node, SetLevelClamps) {
  Node n(0, tianhe1a_node_spec());
  EXPECT_EQ(n.set_level(-5), 0);
  EXPECT_TRUE(n.at_lowest());
  EXPECT_EQ(n.set_level(99), 9);
  EXPECT_TRUE(n.at_highest());
  EXPECT_EQ(n.set_level(4), 4);
}

TEST(Node, DegradeAndRestoreOneLevel) {
  Node n(0, tianhe1a_node_spec());
  EXPECT_EQ(n.degrade_one(), 8);
  EXPECT_EQ(n.degrade_one(), 7);
  EXPECT_EQ(n.restore_one(), 8);
  n.set_level(0);
  EXPECT_EQ(n.degrade_one(), 0);  // cannot go below the floor
}

TEST(Node, UncontrollableIgnoresCommands) {
  Node n(0, uncontrollable_node_spec());
  EXPECT_FALSE(n.controllable());
  EXPECT_EQ(n.set_level(0), n.spec().ladder.highest());
  EXPECT_TRUE(n.at_highest());
}

TEST(Node, EstimatedPowerMatchesModel) {
  Node n(0, tianhe1a_node_spec());
  const OperatingPoint op = busy_op(n.spec());
  n.set_operating_point(op);
  EXPECT_EQ(n.estimated_power(), n.spec().power_model.power(9, op));
  n.set_level(3);
  EXPECT_EQ(n.estimated_power(), n.spec().power_model.power(3, op));
}

TEST(Node, EstimatedPowerAtClampsLevel) {
  Node n(0, tianhe1a_node_spec());
  n.set_operating_point(busy_op(n.spec()));
  EXPECT_EQ(n.estimated_power_at(-1), n.estimated_power_at(0));
  EXPECT_EQ(n.estimated_power_at(42), n.estimated_power_at(9));
}

TEST(Node, TruePowerEqualsEstimateWithoutVariationAtAmbient) {
  // No variation RNG, temperature below the leakage reference.
  Node n(0, tianhe1a_node_spec());
  n.set_operating_point(busy_op(n.spec()));
  EXPECT_NEAR(n.true_power().value(), n.estimated_power().value(), 1e-9);
}

TEST(Node, VariationMakesTruePowerDiffer) {
  common::Rng rng(99);
  // Find a node whose drawn variation is not ~1.
  Node n(0, tianhe1a_node_spec(), &rng);
  n.set_operating_point(busy_op(n.spec()));
  const double ratio = n.true_power().value() / n.estimated_power().value();
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
  EXPECT_NE(ratio, 1.0);
}

TEST(Node, ThermalAdvanceWarmsUnderLoad) {
  Node n(0, tianhe1a_node_spec());
  n.set_operating_point(busy_op(n.spec()));
  const Celsius before = n.temperature();
  for (int i = 0; i < 60; ++i) n.advance_thermal(Seconds{1.0});
  EXPECT_GT(n.temperature(), before);
}

TEST(Node, LeakageRaisesTruePowerWhenHot) {
  auto base = *tianhe1a_node_spec();
  base.thermal.leakage_coefficient = 0.004;
  base.thermal.leakage_reference = Celsius{30.0};
  base.thermal.thermal_resistance = 0.12;
  const auto spec = std::make_shared<const NodeSpec>(std::move(base));

  Node n(0, spec);
  n.set_operating_point(busy_op(*spec));
  const Watts cold = n.true_power();
  for (int i = 0; i < 2000; ++i) n.advance_thermal(Seconds{1.0});
  EXPECT_GT(n.true_power(), cold);  // positive feedback loop
}

TEST(Node, BusyFlag) {
  Node n(0, tianhe1a_node_spec());
  EXPECT_FALSE(n.busy());
  n.set_busy(true);
  EXPECT_TRUE(n.busy());
}

TEST(NodeSpec, FactoriesValidate) {
  EXPECT_NO_THROW(tianhe1a_node_spec()->validate());
  EXPECT_NO_THROW(low_power_node_spec()->validate());
  EXPECT_NO_THROW(uncontrollable_node_spec()->validate());
}

TEST(NodeSpec, TianheMatchesPaperDescription) {
  const auto spec = tianhe1a_node_spec();
  EXPECT_EQ(spec->sockets, 2);
  EXPECT_EQ(spec->cores_per_socket, 6);
  EXPECT_EQ(spec->total_cores(), 12);
  EXPECT_EQ(spec->ladder.num_levels(), 10);
  using namespace pcap::literals;
  EXPECT_EQ(spec->mem_total, 48_GiB);
}

TEST(NodeSpec, ValidateCatchesMismatchedDepth) {
  auto bad = *tianhe1a_node_spec();
  bad.ladder = DvfsLadder::coarse_low_power();  // 4 levels vs 10-level table
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace pcap::hw
