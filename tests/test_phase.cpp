#include "workload/phase.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace pcap::workload {
namespace {

TEST(FrequencyProgressRate, FullSpeedIsOne) {
  EXPECT_DOUBLE_EQ(frequency_progress_rate(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(frequency_progress_rate(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(frequency_progress_rate(0.0, 1.0), 1.0);
}

TEST(FrequencyProgressRate, ComputeBoundScalesWithClock) {
  // s = 1: progress rate equals the clock ratio.
  EXPECT_DOUBLE_EQ(frequency_progress_rate(1.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(frequency_progress_rate(1.0, 0.25), 0.25);
}

TEST(FrequencyProgressRate, MemoryBoundIgnoresClock) {
  EXPECT_DOUBLE_EQ(frequency_progress_rate(0.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(frequency_progress_rate(0.0, 0.1), 1.0);
}

TEST(FrequencyProgressRate, AmdahlMiddleGround) {
  // s = 0.5, r = 0.5: rate = 1 / (0.5/0.5 + 0.5) = 2/3.
  EXPECT_NEAR(frequency_progress_rate(0.5, 0.5), 2.0 / 3.0, 1e-12);
}

TEST(FrequencyProgressRate, NonPositiveSpeedThrows) {
  EXPECT_THROW(frequency_progress_rate(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(frequency_progress_rate(0.5, -1.0), std::invalid_argument);
}

// Property grid: rate is always in (0, 1] for r in (0, 1], and it is
// monotone both in the clock ratio (faster clock, faster progress) and in
// the sensitivity (more compute-bound, more slowdown).
class RateProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RateProperty, BoundedAndMonotone) {
  const auto [s, r] = GetParam();
  const double rate = frequency_progress_rate(s, r);
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 1.0 + 1e-12);
  // Faster clock never slows progress.
  EXPECT_LE(rate, frequency_progress_rate(s, std::min(1.0, r + 0.1)) + 1e-12);
  // Higher sensitivity never speeds progress at reduced clock.
  if (s + 0.1 <= 1.0) {
    EXPECT_GE(rate, frequency_progress_rate(s + 0.1, r) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RateProperty,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.5, 0.8, 0.9),
                       ::testing::Values(0.2, 0.55, 0.8, 1.0)));

TEST(ValidatePhase, AcceptsReasonablePhase) {
  Phase p;
  p.cpu_utilization = 0.8;
  p.frequency_sensitivity = 0.5;
  p.mem_fraction = 0.3;
  p.comm_bytes_per_proc_per_s = 1e6;
  p.seconds_per_iteration = 10.0;
  EXPECT_NO_THROW(validate_phase(p));
}

TEST(ValidatePhase, RejectsOutOfRange) {
  Phase p;
  p.seconds_per_iteration = 10.0;

  p.cpu_utilization = 1.5;
  EXPECT_THROW(validate_phase(p), std::invalid_argument);
  p.cpu_utilization = 0.5;

  p.frequency_sensitivity = -0.1;
  EXPECT_THROW(validate_phase(p), std::invalid_argument);
  p.frequency_sensitivity = 0.5;

  p.mem_fraction = 2.0;
  EXPECT_THROW(validate_phase(p), std::invalid_argument);
  p.mem_fraction = 0.2;

  p.comm_bytes_per_proc_per_s = -1.0;
  EXPECT_THROW(validate_phase(p), std::invalid_argument);
  p.comm_bytes_per_proc_per_s = 0.0;

  p.seconds_per_iteration = 0.0;
  EXPECT_THROW(validate_phase(p), std::invalid_argument);
}

}  // namespace
}  // namespace pcap::workload
