#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace pcap::common {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SpawnsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForComputesSum) {
  ThreadPool pool(4);
  std::vector<long> results(1000);
  pool.parallel_for(results.size(),
                    [&](std::size_t i) { results[i] = static_cast<long>(i); });
  const long sum = std::accumulate(results.begin(), results.end(), 0L);
  EXPECT_EQ(sum, 999L * 1000L / 2);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, GrainedParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainedParallelForRangesRespectGrain) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(230, 50, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::size_t covered = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, 50u);
    EXPECT_EQ(begin % 50, 0u);  // chunk boundaries fixed by grain alone
    covered += end - begin;
  }
  EXPECT_EQ(covered, 230u);
}

TEST(ThreadPool, GrainedParallelForSmallNRunsInline) {
  ThreadPool pool(4);
  int calls = 0;  // no atomics needed: must run on the calling thread
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(16, 64, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 16u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, GrainedParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, 8, [](std::size_t, std::size_t) {
    FAIL() << "should not run";
  });
}

TEST(ThreadPool, GrainedParallelForZeroGrainIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(10, 0, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, GrainedParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000, 10,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin == 500) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksDrain) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  futs.reserve(500);
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    // Destructor runs here; queued tasks may or may not run, but the
    // destructor must not hang or crash.
  }
  SUCCEED();
}

}  // namespace
}  // namespace pcap::common
