// Tier-1 determinism: a cluster run must be bit-identical for every
// worker-thread count. The per-tick sweeps draw all randomness from
// per-node streams and perform every reduction serially in index order,
// so the pool is an implementation detail the results cannot see.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

namespace pcap {
namespace {

struct RunResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  double total_energy_j = 0.0;
};

RunResult run_cluster(std::size_t worker_threads) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 20260806;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  // Force the parallel machinery on even for this small population and
  // make chunks small, so many workers genuinely interleave.
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.9;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;  // exercises per-node loss draws
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"), common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{500.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.finished) {
    out.total_energy_j += r.energy_j;
  }
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.p_low_w, pb.p_low_w) << "tick " << i;
    EXPECT_EQ(pa.p_high_w, pb.p_high_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.running_jobs, pb.running_jobs) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    const metrics::JobRecord& ra = a.finished[i];
    const metrics::JobRecord& rb = b.finished[i];
    EXPECT_EQ(ra.id, rb.id) << "job " << i;
    EXPECT_EQ(ra.app, rb.app) << "job " << i;
    EXPECT_EQ(ra.nprocs, rb.nprocs) << "job " << i;
    EXPECT_EQ(ra.actual_s, rb.actual_s) << "job " << i;
    EXPECT_EQ(ra.energy_j, rb.energy_j) << "job " << i;
  }
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
}

TEST(Determinism, ParallelRunBitIdenticalToSerial) {
  const RunResult serial = run_cluster(1);
  ASSERT_GT(serial.points.size(), 400u);
  ASSERT_GT(serial.finished.size(), 0u) << "run too short to finish a job";

  const RunResult four = run_cluster(4);
  expect_identical(serial, four);

  // Hardware concurrency too, in case it differs from both.
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) {
    const RunResult native = run_cluster(hw);
    expect_identical(serial, native);
  }
}

TEST(Determinism, RepeatedParallelRunsAgree) {
  const RunResult a = run_cluster(4);
  const RunResult b = run_cluster(4);
  expect_identical(a, b);
}

// -- degraded, lossy-actuation bit-identity -----------------------------------
//
// The sharded context assembly defers all reconciler mutation to the
// serial merge; this run makes that machinery earn its keep on every
// cycle: a provision tight enough to keep the engine in yellow/red (so
// A_degraded stays populated and the context is built every control
// cycle), a faulty telemetry plane (loss + delay + dropout + corruption +
// crashes → stale views, fallbacks, rejected samples), and a lossy
// actuation plane (command loss, delays, failed and partial transitions,
// reboots → retries, divergences, heals, unresponsive nodes). Every one
// of those paths must still be bit-identical across worker counts.
RunResult run_degraded_cluster(std::size_t worker_threads) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 30270807;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  // Tight enough that yellow recurs for the whole run: the degraded set
  // never drains, so the manager cannot take the green fast path.
  p.thresholds.provision = cl.theoretical_peak() * 0.70;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;
  p.collector.transport.delay_cycles = 1;
  p.collector.faults.agent_dropout_rate = 0.02;
  p.collector.faults.agent_recovery_rate = 0.25;
  p.collector.faults.crash_rate = 0.005;
  p.collector.faults.corruption_rate = 0.02;
  p.actuation.command_loss_rate = 0.15;
  p.actuation.delivery_delay_cycles = 1;
  p.actuation.transition_failure_rate = 0.05;
  p.actuation.partial_transition_rate = 0.20;
  p.actuation.reboot_rate = 0.002;
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc-c"), common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{500.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.finished) {
    out.total_energy_j += r.energy_j;
  }
  return out;
}

TEST(Determinism, DegradedLossyRunBitIdenticalToSerial) {
  const RunResult serial = run_degraded_cluster(1);

  // The scenario must actually exercise the degraded machinery, or this
  // test silently decays into the healthy-path one above.
  std::uint64_t non_green = 0;
  std::uint64_t targets = 0;
  for (const metrics::CyclePoint& pt : serial.points) {
    if (pt.state != static_cast<int>(power::PowerState::kGreen)) ++non_green;
    targets += pt.targets;
  }
  ASSERT_GT(non_green, 20u) << "provision not tight enough";
  ASSERT_GT(targets, 50u) << "policy never selected anything";

  const RunResult four = run_degraded_cluster(4);
  expect_identical(serial, four);
}

// -- event-driven vs full-sweep A/B -------------------------------------------
//
// The event-driven due set (staircase grid + wake events, quiescent
// blocks skipped whole) and the reference full scan must agree on every
// per-node predicate — which makes the two modes bit-identical, meter
// readings and job energies included. Noise is disabled so nodes really
// do quiesce, and a mid-run burst of DVFS pokes force-wakes quiescent
// nodes through the changed-slot drain (the wake path a fault/actuation
// event takes).
struct AbResult {
  RunResult run;
  std::uint64_t node_refreshes = 0;
};

AbResult run_quiescent_cluster(std::uint64_t seed, bool event_driven,
                               std::size_t worker_threads) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = seed;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cfg.utilization_noise_sigma = 0.0;  // allow true quiescence
  cfg.event_driven_ticks = event_driven;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.9;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"), common::Rng(seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{150.0});
  // Fault injection: knock a spread of nodes down a level mid-run. By now
  // long-phase nodes have converged and quiesced; the pokes must wake
  // them (power re-evaluation + thermal fast-forward) in both modes.
  for (std::size_t i = 0; i < cl.nodes().size(); i += 17) {
    hw::Node& n = cl.nodes()[i];
    n.set_level(static_cast<hw::Level>(n.level() - 1));
  }
  cl.run(Seconds{100.0});
  for (std::size_t i = 0; i < cl.nodes().size(); i += 17) {
    hw::Node& n = cl.nodes()[i];
    n.set_level(n.spec().ladder.highest());
  }
  cl.run(Seconds{300.0});

  AbResult out;
  out.run.points = cl.recorder().points();
  out.run.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.run.finished) {
    out.run.total_energy_j += r.energy_j;
  }
  out.node_refreshes =
      cl.metrics().counter_value("pcap_cluster_node_refreshes_total").value();
  return out;
}

TEST(Determinism, EventDrivenBitIdenticalToFullSweep) {
  for (const std::uint64_t seed : {20260806ull, 20260807ull, 20260808ull}) {
    const AbResult on = run_quiescent_cluster(seed, true, 1);
    const AbResult off = run_quiescent_cluster(seed, false, 1);
    ASSERT_GT(on.run.points.size(), 300u);
    ASSERT_GT(on.run.finished.size(), 0u) << "seed " << seed;
    expect_identical(on.run, off.run);
    // Identical due sets, not merely identical results: both modes must
    // have refreshed exactly the same number of node-slots.
    EXPECT_EQ(on.node_refreshes, off.node_refreshes) << "seed " << seed;
    // And quiescence must actually engage, or this A/B tests nothing:
    // a full per-tick refresh would cost points * num_nodes slots.
    const std::uint64_t full_cost =
        static_cast<std::uint64_t>(on.run.points.size()) * 200u;
    EXPECT_LT(on.node_refreshes, full_cost / 4) << "seed " << seed;
  }
}

TEST(Determinism, EventDrivenParallelBitIdenticalToSerial) {
  const AbResult serial = run_quiescent_cluster(44444ull, true, 1);
  const AbResult four = run_quiescent_cluster(44444ull, true, 4);
  expect_identical(serial.run, four.run);
  EXPECT_EQ(serial.node_refreshes, four.node_refreshes);
}

// -- policy-selection goldens -------------------------------------------------
//
// The control-plane rework (sharded context assembly, persistent job
// index, allocation-free selection scratch) must not change a single
// selection. These aggregates were recorded from the pre-change tree on a
// fixed-seed yellow-heavy sweep; any drift in context assembly order,
// job aggregation order, or policy tie-breaking shows up here.

struct SelectionGolden {
  const char* policy;
  std::uint64_t targets;
  std::uint64_t transitions;
  std::uint64_t yellow_points;
  std::uint64_t red_points;
  double power_sum_w;  // exact: bit-for-bit reproducible
};

SelectionGolden run_selection_sweep(const char* policy) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 771177;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = 1;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  // A tight provision keeps the run in yellow/red most of the time, so
  // the policy is consulted on nearly every control cycle.
  p.thresholds.provision = cl.theoretical_peak() * 0.80;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy(policy), common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{400.0});

  SelectionGolden g{policy, 0, 0, 0, 0, 0.0};
  for (const metrics::CyclePoint& pt : cl.recorder().points()) {
    g.targets += pt.targets;
    g.transitions += pt.transitions;
    if (pt.state == static_cast<int>(power::PowerState::kYellow)) {
      ++g.yellow_points;
    }
    if (pt.state == static_cast<int>(power::PowerState::kRed)) {
      ++g.red_points;
    }
    g.power_sum_w += pt.power_w;
  }
  return g;
}

TEST(Determinism, SelectionGoldensUnchanged) {
  // Recorded from the serial tick path at the quiescence defaults
  // (util_refresh_ticks = 16, green_collect_stride = 16, OU noise on busy
  // nodes only) — each of those moves the fixed-seed trajectory, so the
  // goldens were re-pinned when the defaults landed. Any *further* drift
  // is a regression. mpc/mpc-c/hri/hri-c coincide here: the
  // fixed-seed workload keeps one dominant wide job ahead on both power
  // and rate, so every variant keeps picking it — the bit-exact
  // power_sum_w still pins the whole command trajectory for each.
  const SelectionGolden goldens[] = {
      {"mpc", 516, 516, 12, 0, 0x1.383b3a10638b6p+24},
      {"mpc-c", 516, 516, 12, 0, 0x1.383b3a10638b6p+24},
      {"lpc", 308, 308, 56, 0, 0x1.3b0e5db7605bfp+24},
      {"lpc-c", 476, 476, 12, 0, 0x1.399af08343ed8p+24},
      {"bfp", 516, 516, 12, 0, 0x1.39a168f058faep+24},
      {"hri", 516, 516, 12, 0, 0x1.383b3a10638b6p+24},
      {"hri-c", 516, 516, 12, 0, 0x1.383b3a10638b6p+24},
  };
  for (const SelectionGolden& want : goldens) {
    const SelectionGolden got = run_selection_sweep(want.policy);
    EXPECT_EQ(got.targets, want.targets) << want.policy;
    EXPECT_EQ(got.transitions, want.transitions) << want.policy;
    EXPECT_EQ(got.yellow_points, want.yellow_points) << want.policy;
    EXPECT_EQ(got.red_points, want.red_points) << want.policy;
    EXPECT_EQ(got.power_sum_w, want.power_sum_w)
        << want.policy << " power_sum_w (hex): " << std::hexfloat
        << got.power_sum_w << std::defaultfloat;
  }
}

}  // namespace
}  // namespace pcap
