// Tier-1 determinism: a cluster run must be bit-identical for every
// worker-thread count. The per-tick sweeps draw all randomness from
// per-node streams and perform every reduction serially in index order,
// so the pool is an implementation detail the results cannot see.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

namespace pcap {
namespace {

struct RunResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  double total_energy_j = 0.0;
};

RunResult run_cluster(std::size_t worker_threads) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = 20260806;
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  // Force the parallel machinery on even for this small population and
  // make chunks small, so many workers genuinely interleave.
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.9;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;  // exercises per-node loss draws
  auto mgr = std::make_unique<power::CappingManager>(
      p, power::make_policy("mpc"), common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{500.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.finished) {
    out.total_energy_j += r.energy_j;
  }
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.p_low_w, pb.p_low_w) << "tick " << i;
    EXPECT_EQ(pa.p_high_w, pb.p_high_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.running_jobs, pb.running_jobs) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    const metrics::JobRecord& ra = a.finished[i];
    const metrics::JobRecord& rb = b.finished[i];
    EXPECT_EQ(ra.id, rb.id) << "job " << i;
    EXPECT_EQ(ra.app, rb.app) << "job " << i;
    EXPECT_EQ(ra.nprocs, rb.nprocs) << "job " << i;
    EXPECT_EQ(ra.actual_s, rb.actual_s) << "job " << i;
    EXPECT_EQ(ra.energy_j, rb.energy_j) << "job " << i;
  }
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
}

TEST(Determinism, ParallelRunBitIdenticalToSerial) {
  const RunResult serial = run_cluster(1);
  ASSERT_GT(serial.points.size(), 400u);
  ASSERT_GT(serial.finished.size(), 0u) << "run too short to finish a job";

  const RunResult four = run_cluster(4);
  expect_identical(serial, four);

  // Hardware concurrency too, in case it differs from both.
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) {
    const RunResult native = run_cluster(hw);
    expect_identical(serial, native);
  }
}

TEST(Determinism, RepeatedParallelRunsAgree) {
  const RunResult a = run_cluster(4);
  const RunResult b = run_cluster(4);
  expect_identical(a, b);
}

}  // namespace
}  // namespace pcap
