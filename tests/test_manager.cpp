#include "power/manager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hw/node_spec.hpp"
#include "power/policy_registry.hpp"
#include "workload/npb.hpp"

namespace pcap::power {
namespace {

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void load(double utilization) {
    for (auto& n : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = utilization;
      op.mem_used = n.spec().mem_total * 0.4;
      op.mem_total = n.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = n.spec().nic_bandwidth;
      n.set_operating_point(op);
      n.set_busy(true);
    }
  }

  void run_job(workload::JobId id, int nprocs) {
    scheduler.submit(workload::Job(
        id, workload::npb_by_name("lu", workload::NpbClass::kC), nprocs,
        Seconds{0.0}));
    scheduler.try_launch(Seconds{0.0});
  }
};

CappingManagerParams fast_params() {
  CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};
  p.thresholds.training_cycles = 2;
  p.thresholds.adjust_period_cycles = 100;
  p.capping.steady_green_cycles = 3;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  // Unit tests poke single cycles and inspect the context; collect every
  // cycle so one green cycle is enough to populate it. The stride itself
  // has a dedicated test (test_quiescence.cpp,
  // GreenCollectStrideSkipsQuietCyclesOnly).
  p.green_collect_stride = 1;
  return p;
}

TEST(CappingManager, NameIncludesPolicy) {
  CappingManager m(fast_params(), make_policy("mpc"), common::Rng(1));
  EXPECT_EQ(m.name(), "capping:mpc");
}

TEST(CappingManager, NullPolicyThrows) {
  EXPECT_THROW(CappingManager(fast_params(), nullptr, common::Rng(1)),
               std::invalid_argument);
}

TEST(CappingManager, TrainingCyclesDoNotThrottle) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManager m(fast_params(), make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});
  // Extremely high reading; still training -> no commands.
  const auto r1 =
      m.cycle(Watts{1e6}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_TRUE(r1.training);
  EXPECT_EQ(r1.targets, 0u);
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
}

TEST(CappingManager, YellowCycleThrottlesJobNodes) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);  // nodes 0, 1
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});

  // Thresholds from provision 2000: P_L = 1680, P_H = 1860.
  const auto r =
      m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_FALSE(r.training);
  EXPECT_EQ(r.state, PowerState::kYellow);
  EXPECT_EQ(r.targets, 2u);
  EXPECT_EQ(r.transitions, 2u);
  EXPECT_EQ(rig.nodes[0].level(), 8);
  EXPECT_EQ(rig.nodes[1].level(), 8);
  EXPECT_EQ(rig.nodes[2].level(), 9);  // not part of the job
}

TEST(CappingManager, RedCycleFloorsCandidates) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2});  // node 3 stays unmanaged

  const auto r =
      m.cycle(Watts{1900.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(r.state, PowerState::kRed);
  EXPECT_EQ(rig.nodes[0].level(), 0);
  EXPECT_EQ(rig.nodes[1].level(), 0);
  EXPECT_EQ(rig.nodes[2].level(), 0);
  EXPECT_EQ(rig.nodes[3].level(), 9);  // outside A_candidate
}

TEST(CappingManager, SteadyGreenRestores) {
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  p.capping.steady_green_cycles = 2;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});  // yellow
  EXPECT_EQ(rig.nodes[0].level(), 8);
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});  // green 1
  EXPECT_EQ(rig.nodes[0].level(), 8);
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{3.0});  // green 2
  EXPECT_EQ(rig.nodes[0].level(), 9);
  EXPECT_TRUE(m.engine().degraded().empty());
}

TEST(CappingManager, BuildContextMapsJobsToCandidates) {
  Rig rig(4);
  rig.load(0.8);
  rig.run_job(1, 24);  // nodes 0,1
  rig.run_job(2, 12);  // node 2
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});  // only job 1's nodes monitored

  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  const PolicyContext ctx =
      m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  EXPECT_EQ(ctx.nodes.size(), 2u);
  ASSERT_EQ(ctx.jobs.size(), 1u);  // job 2 invisible: no candidate nodes
  EXPECT_EQ(ctx.jobs[0].id, 1u);
  EXPECT_EQ(ctx.jobs[0].nodes.size(), 2u);
  EXPECT_GT(ctx.jobs[0].power, Watts{0.0});
  EXPECT_GT(ctx.jobs[0].saving_one_level, Watts{0.0});
}

TEST(CappingManager, ContextRateNeedsTwoCycles) {
  Rig rig(2);
  rig.load(0.8);
  rig.run_job(1, 24);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  CappingManager m(p, make_policy("hri"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  PolicyContext ctx = m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  EXPECT_DOUBLE_EQ(ctx.jobs[0].rate_of_increase(), 0.0);  // no history yet

  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  ctx = m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  EXPECT_GT(ctx.jobs[0].power_prev, Watts{0.0});
}

TEST(CappingManager, ThresholdsLearnFromPeak) {
  Rig rig(2);
  rig.load(0.5);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 2;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{1500.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  m.cycle(Watts{1200.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  EXPECT_FALSE(m.thresholds().training());
  EXPECT_EQ(m.thresholds().p_peak(), Watts{1500.0});
}

TEST(CappingManager, UncontrollableNodesNeverChange) {
  Rig rig(2);
  rig.nodes[1] = hw::Node(1, hw::uncontrollable_node_spec());
  rig.load(0.9);
  rig.run_job(1, 24);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{1900.0}, rig.nodes, rig.scheduler, Seconds{1.0});  // red
  EXPECT_EQ(rig.nodes[0].level(), 0);
  EXPECT_TRUE(rig.nodes[1].at_highest());  // no DVFS facility
}

TEST(NodeController, AppliesAndCounts) {
  Rig rig(3);
  NodeController ctl;
  const std::vector<LevelCommand> cmds = {{0, 5}, {1, 9}, {2, 0}};
  // Node 1 is already at 9: received but not applied.
  EXPECT_EQ(ctl.apply(cmds, rig.nodes), 2u);
  EXPECT_EQ(ctl.commands_received(), 3u);
  EXPECT_EQ(ctl.transitions_applied(), 2u);
  EXPECT_EQ(ctl.commands_ignored(), 1u);
  EXPECT_EQ(rig.nodes[0].level(), 5);
  EXPECT_EQ(rig.nodes[2].level(), 0);
}

TEST(NodeController, ClampsOutOfRangeLevels) {
  Rig rig(1);
  NodeController ctl;
  ctl.apply({{0, 99}}, rig.nodes);
  EXPECT_EQ(rig.nodes[0].level(), 9);
  ctl.apply({{0, -5}}, rig.nodes);
  EXPECT_EQ(rig.nodes[0].level(), 0);
}

TEST(NodeController, UnknownNodeThrows) {
  Rig rig(1);
  NodeController ctl;
  EXPECT_THROW(ctl.apply({{7, 3}}, rig.nodes), std::out_of_range);
}

TEST(NodeController, ResetCounters) {
  Rig rig(1);
  NodeController ctl;
  ctl.apply({{0, 3}}, rig.nodes);
  ctl.reset_counters();
  EXPECT_EQ(ctl.commands_received(), 0u);
  EXPECT_EQ(ctl.transitions_applied(), 0u);
}

TEST(NoCappingManager, DoesNothing) {
  Rig rig(2);
  rig.load(0.9);
  NoCappingManager m;
  EXPECT_EQ(m.name(), "none");
  const auto r =
      m.cycle(Watts{9999.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(r.targets, 0u);
  EXPECT_EQ(r.transitions, 0u);
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
}

TEST(CappingManager, DynamicSelectorExcludesPrivilegedJob) {
  Rig rig(4);
  rig.load(0.9);
  // Privileged job on nodes 0-1, normal job on nodes 2-3.
  rig.scheduler.submit(workload::Job(
      1, workload::npb_by_name("ep", workload::NpbClass::kC), 24,
      Seconds{0.0}, workload::JobPriority::kPrivileged));
  rig.scheduler.try_launch(Seconds{0.0});
  rig.run_job(2, 24);

  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  p.selector = CandidateSelectorParams{};
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  // No explicit set_candidate_set: the selector populates it.

  // Red reading floors every candidate — but never the privileged nodes.
  m.cycle(Watts{1900.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(m.candidate_set(), (std::vector<hw::NodeId>{2, 3}));
  EXPECT_TRUE(rig.nodes[0].at_highest());
  EXPECT_TRUE(rig.nodes[1].at_highest());
  EXPECT_EQ(rig.nodes[2].level(), 0);
  EXPECT_EQ(rig.nodes[3].level(), 0);
}

TEST(CappingManager, DynamicSelectorRespectsMaxCandidates) {
  Rig rig(8);
  rig.load(0.5);
  CappingManagerParams p = fast_params();
  CandidateSelectorParams sel;
  sel.max_candidates = 3;
  p.selector = sel;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.cycle(Watts{500.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(m.candidate_set().size(), 3u);
}

/// A spec whose power table is all-zero: every sample legitimately reads
/// 0.0 W. Used to pin down sentinel-vs-flag bugs around "no previous
/// sample".
hw::NodeSpecPtr zero_power_spec() {
  hw::DvfsLadder ladder = hw::DvfsLadder::xeon_x5670();
  hw::DevicePowerTable table;
  const auto n = static_cast<std::size_t>(ladder.num_levels());
  table.idle.assign(n, Watts{0.0});
  table.cpu_dyn.assign(n, Watts{0.0});
  table.mem_dyn.assign(n, Watts{0.0});
  table.nic_dyn.assign(n, Watts{0.0});
  auto s = std::make_shared<hw::NodeSpec>(hw::NodeSpec{
      .name = "zero_power",
      .sockets = 2,
      .cores_per_socket = 6,
      .mem_total = Bytes{48.0 * 1024 * 1024 * 1024},
      .nic_bandwidth = 5e9,
      .ladder = std::move(ladder),
      .power_model = hw::PowerModel{std::move(table)},
      .thermal = hw::ThermalParams{},
      .controllable = true,
  });
  s->validate();
  return s;
}

// Regression: build_context_into used `power_prev > 0` as its "have a
// previous sample" test, so a node legitimately reporting 0.0 W zeroed
// the whole job's power_prev — and with it the rate-of-increase signal
// the change-based policies run on.
TEST(CappingManager, ZeroWattPreviousSampleStillCountsAsHistory) {
  Rig rig(2);
  rig.nodes[0] = hw::Node(0, zero_power_spec());
  rig.load(0.9);
  rig.run_job(1, 24);  // spans nodes 0 (0 W) and 1 (real watts)
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  CappingManager m(p, make_policy("hri"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  const PolicyContext ctx =
      m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.jobs.size(), 1u);
  const NodeView* zero = ctx.node(0);
  ASSERT_NE(zero, nullptr);
  EXPECT_TRUE(zero->has_prev);
  EXPECT_EQ(zero->power_prev, Watts{0.0});
  // Node 1's real previous-cycle watts survive into the job aggregate.
  EXPECT_GT(ctx.jobs[0].power_prev, Watts{0.0});
}

TEST(CappingManager, DelayedTelemetryGoesStaleAndGetsFallback) {
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  // Every report arrives 3 cycles late but the manager only trusts views
  // up to 2 cycles old: every view it ever sees is stale.
  p.collector.transport.delay_cycles = 3;
  p.max_sample_age_cycles = 2;
  p.stale_power_margin = 0.25;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  ManagerReport r;
  for (int c = 1; c <= 6; ++c) {
    r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                Seconds{static_cast<double>(c)});
  }
  // Yellow pressure, but both views are stale: counted, substituted, and
  // excluded from selection — no node was throttled blind.
  EXPECT_EQ(r.state, PowerState::kYellow);
  EXPECT_EQ(r.stale_nodes, 2u);
  EXPECT_EQ(r.fallback_nodes, 2u);
  EXPECT_EQ(r.targets, 0u);
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());

  const PolicyContext ctx =
      m.build_context(Watts{1700.0}, rig.nodes, rig.scheduler);
  ASSERT_EQ(ctx.nodes.size(), 2u);
  for (const NodeView& nv : ctx.nodes) {
    EXPECT_TRUE(nv.stale);
    // The fallback is the delivered estimate inflated by the margin.
    const auto hist = m.collector().history(nv.id);
    ASSERT_TRUE(hist.has_value());
    EXPECT_NEAR(nv.power.value(), hist->back().estimated_power.value() * 1.25,
                1e-9);
  }
}

TEST(CappingManager, CorruptSamplesAreRejectedNotActedOn) {
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  p.collector.faults.corruption_rate = 1.0;  // every delivery is garbage
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  ManagerReport r;
  for (int c = 1; c <= 3; ++c) {
    r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                Seconds{static_cast<double>(c)});
  }
  // Nothing plausible ever arrived: both candidates are missing, the
  // implausible samples were counted, and no command was issued off a
  // garbage estimate.
  EXPECT_EQ(r.missing_nodes, 2u);
  EXPECT_GT(r.rejected_samples, 0u);
  EXPECT_GT(r.samples_corrupted, 0u);
  EXPECT_EQ(r.targets, 0u);
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
}

// Regression: build_context_with priced every node's one-level-down
// hypothetical as estimated_power_at(level - 1), indexing off the bottom
// of the DVFS table for a node already at the ladder floor. A floored
// candidate must contribute exactly 0 W of saving_one_level — there is no
// level below to price.
TEST(CappingManager, FlooredCandidateContributesNoSavingOneLevelDown) {
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);  // nodes 0, 1
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  rig.nodes[0].set_level(0);  // already at the ladder floor
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  const PolicyContext ctx =
      m.build_context(Watts{100.0}, rig.nodes, rig.scheduler);
  const NodeView* floored = ctx.node(0);
  ASSERT_NE(floored, nullptr);
  EXPECT_TRUE(floored->at_lowest);
  // The hypothetical clamps to the current draw: zero incremental saving.
  EXPECT_EQ(floored->power_one_level_down, floored->power);
  const NodeView* live = ctx.node(1);
  ASSERT_NE(live, nullptr);
  EXPECT_LT(live->power_one_level_down, live->power);
  // The job aggregate only carries node 1's headroom.
  ASSERT_EQ(ctx.jobs.size(), 1u);
  EXPECT_NEAR(ctx.jobs[0].saving_one_level.value(),
              (live->power - live->power_one_level_down).value(), 1e-9);
}

// Regression: cycle() evaluated the five-clause context gate twice — once
// before channel_.begin_cycle() (the collect decision) and once after
// (the context decision). begin_cycle can only shrink the gate's inputs
// (it drains due deliveries), so the two could disagree in exactly one
// direction: telemetry collected, context skipped. Any divergence sitting
// in that cycle's fresh samples went unobserved.
//
// Reaching the discriminating state — in-flight commands with nothing
// pending, nothing unresponsive, nothing degraded, green power — takes a
// specific sequence: abandon (max_retries = 0) strips the pending record
// while the delayed command stays queued, readmission clears the
// unresponsive flag, and a candidate-set shrink drains A_degraded without
// issuing restore commands.
TEST(CappingManager, DeliveryDrainCycleStillObservesDivergence) {
  Rig rig(3);
  rig.load(0.9);
  rig.run_job(1, 24);  // nodes 0, 1
  CappingManagerParams p = fast_params();
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  p.capping.steady_green_cycles = 100;       // no green restores
  p.actuation.delivery_delay_cycles = 4;     // c1's commands land at c5
  p.reconciliation.max_retries = 0;          // abandon at first due check
  p.reconciliation.retry_backoff_base_cycles = 1;
  CappingManager m(p, make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2});

  // c1 (yellow): throttle commands for nodes 0, 1 are queued for c5;
  // both nodes become pending and degraded.
  const auto r1 =
      m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(r1.state, PowerState::kYellow);
  EXPECT_EQ(r1.commands_in_flight, 2u);
  EXPECT_TRUE(rig.nodes[0].at_highest());  // delayed, nothing applied yet

  // c2 (green): the unacked commands come due and the zero-retry budget
  // abandons both nodes — pending cleared, commands still queued.
  const auto r2 =
      m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  EXPECT_EQ(r2.commands_abandoned, 2u);
  EXPECT_EQ(m.reconciler().unresponsive_count(), 2u);

  // c3 (green): fresh telemetry readmits both abandoned nodes.
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{3.0});
  EXPECT_EQ(m.reconciler().unresponsive_count(), 0u);

  // Shrink A_candidate: nodes 0, 1 leave the context, so the next engine
  // cycle drains A_degraded without restore commands. Their queued
  // throttles stay in flight.
  m.set_candidate_set({2});
  m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{4.0});  // c4
  EXPECT_TRUE(m.engine().degraded().empty());
  EXPECT_EQ(m.actuation_channel().in_flight_count(), 2u);
  EXPECT_EQ(m.reconciler().pending_count(), 0u);
  EXPECT_EQ(m.reconciler().unresponsive_count(), 0u);

  // c5: the only gate clause left is in_flight > 0, and begin_cycle
  // delivers both queued commands — the post-drain re-evaluation used to
  // come up all-clear and skip the context. The externally diverged node
  // 2 (believed 9, observed 5) must still be seen and healed this cycle.
  rig.nodes[2].set_level(5);
  const auto r5 =
      m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{5.0});
  EXPECT_EQ(r5.divergences, 1u);
  EXPECT_EQ(r5.heals, 1u);
  EXPECT_EQ(rig.nodes[0].level(), 8);  // c1's throttles landed this cycle
  EXPECT_EQ(rig.nodes[1].level(), 8);
}

TEST(CappingManager, ManagerUtilizationReported) {
  Rig rig(8);
  rig.load(0.5);
  CappingManager m(fast_params(), make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3, 4, 5, 6, 7});
  const auto r =
      m.cycle(Watts{500.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_GT(r.manager_utilization, 0.0);
}

}  // namespace
}  // namespace pcap::power
