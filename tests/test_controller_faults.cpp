// The controller itself as a failure domain: outage/stall injection, the
// node-local failsafe watchdog (fail-to-cap + adoption handshake),
// checkpoint/warm-restart, orphan-zone accounting under the zone tree,
// and whole-cluster chaos runs that stay bit-identical across worker
// threads.
#include "power/control_fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/uniform_policy.hpp"
#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "hw/watchdog.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/checkpoint.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"
#include "power/zone_manager.hpp"
#include "workload/npb.hpp"

namespace pcap::power {
namespace {

/// CI sweeps PCAP_FAULT_SEED across a seed range; locally the fallback
/// keeps the test deterministic.
std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PCAP_FAULT_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

std::vector<hw::Node> make_nodes(int n) {
  std::vector<hw::Node> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec());
  }
  return nodes;
}

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void load(double utilization) {
    for (auto& n : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = utilization;
      op.mem_used = n.spec().mem_total * 0.4;
      op.mem_total = n.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = n.spec().nic_bandwidth;
      n.set_operating_point(op);
      n.set_busy(true);
    }
  }

  void run_job(workload::JobId id, int nprocs) {
    scheduler.submit(workload::Job(
        id, workload::npb_by_name("lu", workload::NpbClass::kC), nprocs,
        Seconds{0.0}));
    scheduler.try_launch(Seconds{0.0});
  }
};

/// Instant-capping params: P_L = 1680, P_H = 1860, no training, noise-free
/// telemetry, perfect actuation — the only faults are the ones a test
/// injects, so every assertion is exact.
CappingManagerParams quiet_params() {
  CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  p.capping.steady_green_cycles = 3;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  p.green_collect_stride = 1;
  return p;
}

CappingManager make_manager(CappingManagerParams p = quiet_params(),
                            std::uint64_t seed = 5) {
  return CappingManager(p, make_policy("mpc"), common::Rng(seed));
}

ZoneTreeManager make_tree(std::size_t zones,
                          CappingManagerParams p = quiet_params()) {
  ZoneTreeParams zp;
  zp.zone_count = zones;
  return ZoneTreeManager(
      zp, p, [] { return make_policy("mpc"); }, common::Rng(1));
}

// -- fault-model parameters ----------------------------------------------

TEST(ControlFaultParams, DefaultsAreDisabledAndValid) {
  ControlFaultParams p;
  EXPECT_FALSE(p.enabled());
  EXPECT_NO_THROW(p.validate());
  p.outage_rate = 0.01;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.zone_outage_rate = 0.01;
  EXPECT_TRUE(p.enabled());
  p = ControlFaultParams{};
  p.delay_rate = 0.01;
  EXPECT_TRUE(p.enabled());
}

TEST(ControlFaultParams, ValidationRejectsNonsense) {
  ControlFaultParams p;
  p.outage_rate = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ControlFaultParams{};
  p.zone_outage_rate = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ControlFaultParams{};
  p.outage_duration_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ControlFaultParams{};
  p.zone_outage_duration_cycles = -3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ControlFaultParams{};
  p.delay_max_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// -- the injector itself -------------------------------------------------

TEST(ControlFaultInjector, DisabledInjectorIsAlwaysUp) {
  ControlFaultInjector inj(ControlFaultParams{}, common::Rng(7));
  inj.ensure_zones(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.begin_cycle());
    EXPECT_EQ(inj.zones_down(), 0u);
  }
  EXPECT_EQ(inj.outages_started(), 0u);
  EXPECT_EQ(inj.outage_cycles(), 0u);
  EXPECT_EQ(inj.delayed_cycles(), 0u);
  EXPECT_EQ(inj.zone_outage_cycles(), 0u);
}

TEST(ControlFaultInjector, CertainOutageProducesBackToBackWindows) {
  ControlFaultParams p;
  p.outage_rate = 1.0;
  p.outage_duration_cycles = 5;
  ControlFaultInjector inj(p, common::Rng(7));
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(inj.begin_cycle()) << "cycle " << i;
    EXPECT_TRUE(inj.root_down());
  }
  // 25 down cycles = five full 5-cycle windows, each counted once.
  EXPECT_EQ(inj.outages_started(), 5u);
  EXPECT_EQ(inj.outage_cycles(), 25u);
  EXPECT_EQ(inj.delayed_cycles(), 0u);
}

TEST(ControlFaultInjector, StallsAreCountedSeparatelyFromOutages) {
  ControlFaultParams p;
  p.delay_rate = 1.0;
  p.delay_max_cycles = 1;
  ControlFaultInjector inj(p, common::Rng(7));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(inj.begin_cycle());
  }
  EXPECT_EQ(inj.delayed_cycles(), 10u);
  EXPECT_EQ(inj.outages_started(), 0u);
  EXPECT_EQ(inj.outage_cycles(), 0u);
}

TEST(ControlFaultInjector, SameSeedSameSchedule) {
  ControlFaultParams p;
  p.outage_rate = 0.05;
  p.outage_duration_cycles = 4;
  p.zone_outage_rate = 0.05;
  p.zone_outage_duration_cycles = 3;
  ControlFaultInjector a(p, common::Rng(11));
  ControlFaultInjector b(p, common::Rng(11));
  ControlFaultInjector c(p, common::Rng(12));
  a.ensure_zones(2);
  b.ensure_zones(2);
  c.ensure_zones(2);
  bool any_down = false;
  bool c_differs = false;
  for (int i = 0; i < 500; ++i) {
    const bool da = a.begin_cycle();
    const bool db = b.begin_cycle();
    const bool dc = c.begin_cycle();
    EXPECT_EQ(da, db) << "cycle " << i;
    EXPECT_EQ(a.zone_down(0), b.zone_down(0)) << "cycle " << i;
    EXPECT_EQ(a.zone_down(1), b.zone_down(1)) << "cycle " << i;
    any_down = any_down || da || a.zones_down() > 0;
    c_differs = c_differs || da != dc || a.zone_down(0) != c.zone_down(0);
  }
  EXPECT_TRUE(any_down) << "rates never fired in 500 cycles";
  EXPECT_TRUE(c_differs) << "different seeds produced identical schedules";
}

TEST(ControlFaultInjector, ZoneScheduleIndependentOfZoneCount) {
  // Zone z draws from its own stream: its crash windows depend on
  // (seed, z) only — resharding from 1 to 6 zones must not move zone 0's
  // schedule.
  ControlFaultParams p;
  p.zone_outage_rate = 0.05;
  p.zone_outage_duration_cycles = 3;
  ControlFaultInjector narrow(p, common::Rng(21));
  ControlFaultInjector wide(p, common::Rng(21));
  narrow.ensure_zones(1);
  wide.ensure_zones(6);
  for (int i = 0; i < 300; ++i) {
    narrow.begin_cycle();
    wide.begin_cycle();
    EXPECT_EQ(narrow.zone_down(0), wide.zone_down(0)) << "cycle " << i;
  }
}

TEST(ControlFaultInjector, InjectedWindowsAreExactAndDrawFree) {
  // Forced drills work with every rate at zero and draw nothing.
  ControlFaultInjector inj(ControlFaultParams{}, common::Rng(7));
  inj.ensure_zones(2);
  EXPECT_THROW(inj.inject_outage(0), std::invalid_argument);
  EXPECT_THROW(inj.inject_zone_outage(0, -1), std::invalid_argument);
  inj.inject_outage(3);
  inj.inject_zone_outage(1, 2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(inj.begin_cycle()) << "cycle " << i;
    EXPECT_EQ(inj.zone_down(1), i < 2) << "cycle " << i;
    EXPECT_FALSE(inj.zone_down(0));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.begin_cycle());
    EXPECT_EQ(inj.zones_down(), 0u);
  }
  EXPECT_EQ(inj.outages_started(), 1u);
  EXPECT_EQ(inj.outage_cycles(), 3u);
  EXPECT_EQ(inj.zone_outages_started(), 1u);
  EXPECT_EQ(inj.zone_outage_cycles(), 2u);
}

// -- the failsafe watchdog -----------------------------------------------

TEST(Watchdog, ParamsValidate) {
  hw::WatchdogParams p;
  EXPECT_FALSE(p.enabled());
  EXPECT_NO_THROW(p.validate());
  p.timeout_cycles = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = hw::WatchdogParams{};
  p.safe_level = -2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = hw::WatchdogParams{};
  p.timeout_cycles = 4;
  EXPECT_TRUE(p.enabled());
}

TEST(Watchdog, EngagesExactlyAtTimeoutAndFailsToCap) {
  auto nodes = make_nodes(2);
  hw::FailsafeWatchdog wd({.timeout_cycles = 3, .safe_level = 2});
  wd.set_groups({{0, 1}});
  // Silence for timeout-1 cycles: nothing happens.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(wd.tick(nodes), 0u) << "tick " << i;
    EXPECT_EQ(wd.engaged_count(), 0u);
  }
  for (const auto& n : nodes) EXPECT_TRUE(n.at_highest());
  // The 4th silent tick crosses the threshold: both nodes step to safe.
  EXPECT_EQ(wd.tick(nodes), 2u);
  EXPECT_EQ(wd.engaged_count(), 2u);
  EXPECT_EQ(wd.engagements(), 2u);
  EXPECT_EQ(wd.failsafe_transitions(), 2u);
  EXPECT_EQ(wd.pending_count(), 2u);
  EXPECT_TRUE(wd.adoption_pending(0));
  EXPECT_TRUE(wd.adoption_pending(1));
  EXPECT_TRUE(wd.adoption_pending_in_group(0));
  for (const auto& n : nodes) EXPECT_EQ(n.level(), 2);
  // Staying silent re-asserts but does not re-count the episode.
  wd.tick(nodes);
  EXPECT_EQ(wd.engagements(), 2u);
  EXPECT_EQ(wd.failsafe_transitions(), 2u);
}

TEST(Watchdog, HeartbeatAndPerNodeContactDeferTheTimeout) {
  auto nodes = make_nodes(2);
  hw::FailsafeWatchdog wd({.timeout_cycles = 2, .safe_level = 0});
  wd.set_groups({{0, 1}});
  for (int i = 0; i < 10; ++i) {
    wd.heartbeat(0);
    EXPECT_EQ(wd.tick(nodes), 0u) << "tick " << i;
  }
  EXPECT_EQ(wd.engaged_count(), 0u);
  // Group heartbeat stops; node 0 keeps getting command deliveries. Only
  // node 1 times out.
  for (int i = 0; i < 4; ++i) {
    wd.contact(0);
    wd.tick(nodes);
  }
  EXPECT_FALSE(wd.adoption_pending(0));
  EXPECT_TRUE(wd.adoption_pending(1));
  EXPECT_TRUE(nodes[0].at_highest());
  EXPECT_EQ(nodes[1].level(), 0);
}

TEST(Watchdog, NeverRaisesALevel) {
  auto nodes = make_nodes(1);
  nodes[0].set_level(1);  // already below the safe point
  hw::FailsafeWatchdog wd({.timeout_cycles = 1, .safe_level = 2});
  wd.set_groups({{0}});
  for (int i = 0; i < 5; ++i) wd.tick(nodes);
  EXPECT_EQ(nodes[0].level(), 1);  // a failsafe must not add power
  EXPECT_EQ(wd.failsafe_transitions(), 0u);
  EXPECT_EQ(wd.pending_count(), 0u);  // nothing changed, nothing to adopt
  EXPECT_EQ(wd.engaged_count(), 1u);  // but the node is being watched
}

TEST(Watchdog, ReassertsAfterMidOutageReboot) {
  auto nodes = make_nodes(1);
  hw::FailsafeWatchdog wd({.timeout_cycles = 1, .safe_level = 2});
  wd.set_groups({{0}});
  wd.tick(nodes);
  wd.tick(nodes);
  ASSERT_EQ(nodes[0].level(), 2);
  EXPECT_EQ(wd.failsafe_transitions(), 1u);
  // Firmware reboot resets the node to full power mid-outage; the next
  // silent cycle re-caps it within one tick, same engagement episode.
  nodes[0].set_level(nodes[0].spec().ladder.highest());
  wd.tick(nodes);
  EXPECT_EQ(nodes[0].level(), 2);
  EXPECT_EQ(wd.failsafe_transitions(), 2u);
  EXPECT_EQ(wd.engagements(), 1u);
}

TEST(Watchdog, ReleaseOnHeartbeatKeepsPendingUntilAdoption) {
  auto nodes = make_nodes(1);
  hw::FailsafeWatchdog wd({.timeout_cycles = 1, .safe_level = 2});
  wd.set_groups({{0}});
  wd.tick(nodes);
  wd.tick(nodes);
  ASSERT_EQ(wd.engaged_count(), 1u);
  // The controller comes back: engagement releases, but the level change
  // stays pending until the reconciler explicitly adopts it.
  wd.heartbeat(0);
  wd.tick(nodes);
  EXPECT_EQ(wd.engaged_count(), 0u);
  EXPECT_EQ(wd.pending_count(), 1u);
  EXPECT_TRUE(wd.adoption_pending_in_group(0));
  wd.resolve_adoption(0);
  EXPECT_EQ(wd.pending_count(), 0u);
  EXPECT_FALSE(wd.adoption_pending(0));
  // Resolving twice is harmless.
  wd.resolve_adoption(0);
  EXPECT_EQ(wd.pending_count(), 0u);
}

TEST(Watchdog, RegroupingNeverManufacturesInstantTimeouts) {
  auto nodes = make_nodes(4);
  hw::FailsafeWatchdog wd({.timeout_cycles = 3, .safe_level = 0});
  wd.set_groups({{0, 1}, {2, 3}});
  wd.tick(nodes);
  wd.tick(nodes);  // one tick short of timing out
  wd.set_groups({{0, 1, 2, 3}});  // repartition stamps heartbeats "now"
  wd.tick(nodes);
  wd.tick(nodes);
  EXPECT_EQ(wd.engaged_count(), 0u);
  for (const auto& n : nodes) EXPECT_TRUE(n.at_highest());
}

// -- flat-manager integration: outage, failsafe, adoption ----------------

TEST(ControllerOutage, DeadCyclesDecideNothingAndWatchdogCaps) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManager m = make_manager();
  m.set_candidate_set({0, 1, 2, 3});
  hw::FailsafeWatchdog wd({.timeout_cycles = 2, .safe_level = 1});
  m.set_watchdog(&wd);

  // Two healthy yellow cycles: commands flow, believed levels settle,
  // heartbeats keep the watchdog quiet.
  for (int i = 0; i < 2; ++i) {
    const auto r =
        m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0 + i});
    EXPECT_FALSE(r.controller_down);
    wd.tick(rig.nodes);
  }
  EXPECT_EQ(wd.engaged_count(), 0u);

  // The controller blacks out for six cycles. Dead cycles decide nothing;
  // after two silent cycles the local agents step every node to level 1.
  m.control_faults().inject_outage(6);
  for (int i = 0; i < 6; ++i) {
    const auto r =
        m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{3.0 + i});
    EXPECT_TRUE(r.controller_down) << "cycle " << i;
    EXPECT_EQ(r.targets, 0u) << "cycle " << i;
    wd.tick(rig.nodes);
  }
  EXPECT_GT(wd.engagements(), 0u);
  EXPECT_GT(wd.pending_count(), 0u);
  for (const auto& n : rig.nodes) EXPECT_EQ(n.level(), 1);

  // Recovery cycle: the reconciler adopts every watchdog-imposed level —
  // zero divergence warnings, zero healing commands raising what the
  // failsafe lowered.
  const auto r =
      m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{9.0});
  wd.tick(rig.nodes);
  EXPECT_FALSE(r.controller_down);
  EXPECT_EQ(r.divergences, 0u);
  EXPECT_EQ(r.heals, 0u);
  EXPECT_GT(r.watchdog_adoptions, 0u);
  EXPECT_EQ(wd.pending_count(), 0u);
  EXPECT_EQ(m.reconciler().total_adopted(), r.watchdog_adoptions);
  // Adopted nodes entered A_degraded: steady green restores them the
  // usual one-level-per-T_g way instead of leaving them throttled forever.
  EXPECT_FALSE(m.engine().degraded().empty());
  for (int i = 0; i < 120; ++i) {
    m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{10.0 + i});
    wd.tick(rig.nodes);
  }
  for (const auto& n : rig.nodes) {
    EXPECT_TRUE(n.at_highest()) << "node " << n.id() << " never restored";
  }
}

TEST(ControllerOutage, ManagerHeartbeatsKeepWatchdogQuietWhenHealthy) {
  Rig rig(4);
  rig.load(0.5);
  CappingManager m = make_manager();
  m.set_candidate_set({0, 1, 2, 3});
  hw::FailsafeWatchdog wd({.timeout_cycles = 1, .safe_level = 0});
  m.set_watchdog(&wd);
  for (int i = 0; i < 20; ++i) {
    m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{1.0 + i});
    wd.tick(rig.nodes);
  }
  EXPECT_EQ(wd.engagements(), 0u);
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
}

// -- zone tree: orphan adoption and root blackouts -----------------------

TEST(ZoneOutage, OrphanZoneInflatesSiblingShares) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);  // zone 0: nodes 0, 1
  rig.run_job(2, 24);  // zone 1: nodes 2, 3
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});

  // Healthy yellow cycle: both zones measured, deficit split evenly.
  auto r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  ASSERT_EQ(r.state, PowerState::kYellow);
  EXPECT_EQ(r.zones_down, 0u);
  const Watts orphan_power = m.zone_power(1);
  ASSERT_GT(orphan_power.value(), 0.0);

  // Zone 1's shard crashes. Its nodes keep their levels (no commands can
  // reach them), and zone 0 inherits the whole deficit inflated by the
  // orphan margin on zone 1's last-known power.
  m.control_faults().inject_zone_outage(1, 2);
  const auto levels_before = std::vector<hw::Level>{rig.nodes[2].level(),
                                                    rig.nodes[3].level()};
  r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  EXPECT_EQ(r.zones_down, 1u);
  EXPECT_FALSE(r.controller_down);
  EXPECT_GT(r.ctrl_zone_outage_cycles, 0u);
  EXPECT_EQ(rig.nodes[2].level(), levels_before[0]);
  EXPECT_EQ(rig.nodes[3].level(), levels_before[1]);
  const double deficit = 1700.0 - r.p_low.value();
  ASSERT_GT(deficit, 0.0);
  EXPECT_EQ(m.zone_share(1).value(), 0.0);
  // stale_power_margin (0.10) × last-known orphan power on top of the
  // whole deficit, all on the single surviving zone.
  EXPECT_NEAR(m.zone_share(0).value(), deficit + 0.1 * orphan_power.value(),
              1e-9);

  // Window drains: the shard comes back and both zones share again.
  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{3.0});
  r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{4.0});
  EXPECT_EQ(r.zones_down, 0u);
  EXPECT_GT(m.zone_share(1).value(), 0.0);
}

TEST(ZoneOutage, NeverMeasuredOrphanIsAccountedAtWorstCase) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);
  rig.run_job(2, 24);
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});

  // Zone 1 is down from the very first non-training cycle: the root has
  // never seen it, so it is accounted at its members' theoretical max.
  m.control_faults().inject_zone_outage(1, 1);
  const auto r =
      m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  ASSERT_EQ(r.state, PowerState::kYellow);
  const double deficit = 1700.0 - r.p_low.value();
  double worst_case = 0.0;
  for (const hw::NodeId id : m.zone_members(1)) {
    worst_case += rig.nodes[id].spec().power_model.theoretical_max().value();
  }
  EXPECT_NEAR(m.zone_share(0).value(), deficit + 0.1 * worst_case, 1e-9);
}

TEST(ZoneOutage, RootBlackoutSilencesTheWholeTree) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});
  auto r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  const double p_low_before = r.p_low.value();

  m.control_faults().inject_outage(2);
  for (int i = 0; i < 2; ++i) {
    r = m.cycle(Watts{1900.0}, rig.nodes, rig.scheduler, Seconds{2.0 + i});
    EXPECT_TRUE(r.controller_down) << "cycle " << i;
    EXPECT_EQ(r.targets, 0u) << "cycle " << i;
    EXPECT_EQ(m.zones_active_last_cycle(), 0u) << "cycle " << i;
    // A dead root cannot learn: thresholds stay frozen at their last
    // live values even though the meter reads higher now.
    EXPECT_EQ(r.p_low.value(), p_low_before) << "cycle " << i;
  }
  r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{5.0});
  EXPECT_FALSE(r.controller_down);
  EXPECT_GT(m.zones_active_last_cycle(), 0u);
  EXPECT_EQ(r.ctrl_outages, 1u);
  EXPECT_EQ(r.ctrl_outage_cycles, 2u);
}

// -- checkpoint / warm restart -------------------------------------------

TEST(Checkpoint, ShardCodecRoundTripsBitExact) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManager m = make_manager();
  m.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 3; ++i) {
    m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0 + i});
  }
  const ShardCheckpoint cp = m.checkpoint();
  EXPECT_FALSE(cp.reconciler.slots.empty());  // believed levels exist
  const std::string text = encode_checkpoint(cp);
  const ShardCheckpoint decoded = decode_shard_checkpoint(text);
  // decode ∘ encode is the identity on the wire image: hexfloats survive
  // to the last ulp.
  EXPECT_EQ(encode_checkpoint(decoded), text);
}

TEST(Checkpoint, MalformedImagesThrow) {
  EXPECT_THROW(decode_shard_checkpoint(""), std::runtime_error);
  EXPECT_THROW(decode_shard_checkpoint("not a checkpoint"),
               std::runtime_error);
  EXPECT_THROW(decode_tree_checkpoint("pcap-shard-checkpoint v2\n"),
               std::runtime_error);  // wrong kind
  // v1 images predate the learner training_done flag and the predictor/
  // policy state lines: rejected loudly rather than resumed wrong.
  EXPECT_THROW(decode_shard_checkpoint("pcap-shard-checkpoint v1\n"),
               std::runtime_error);
  EXPECT_THROW(decode_tree_checkpoint("pcap-tree-checkpoint v1\n"),
               std::runtime_error);
  CappingManager m = make_manager();
  const std::string text = encode_checkpoint(m.checkpoint());
  EXPECT_THROW(decode_shard_checkpoint(text.substr(0, text.size() / 2)),
               std::runtime_error);
}

TEST(Checkpoint, WarmRestartContinuesExactlyWhereTheOldControllerStopped) {
  // Twin rigs: A runs 4 cycles and checkpoints; C runs 8 uninterrupted.
  // B = fresh manager + restore must replay C's cycles 5..8 exactly —
  // same believed levels, no spurious divergences, no retraining.
  Rig rig_a(4);
  rig_a.load(0.9);
  rig_a.run_job(1, 48);
  Rig rig_c(4);
  rig_c.load(0.9);
  rig_c.run_job(1, 48);

  CappingManager a = make_manager();
  a.set_candidate_set({0, 1, 2, 3});
  CappingManager c = make_manager();
  c.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 4; ++i) {
    a.cycle(Watts{1700.0}, rig_a.nodes, rig_a.scheduler, Seconds{1.0 + i});
    c.cycle(Watts{1700.0}, rig_c.nodes, rig_c.scheduler, Seconds{1.0 + i});
  }
  const std::string image = encode_checkpoint(a.checkpoint());

  CappingManager b = make_manager();
  b.set_candidate_set({0, 1, 2, 3});
  b.restore(decode_shard_checkpoint(image));
  EXPECT_FALSE(b.thresholds().training());
  EXPECT_EQ(b.thresholds().p_low().value(), a.thresholds().p_low().value());

  for (int i = 0; i < 4; ++i) {
    const auto rb =
        b.cycle(Watts{1700.0}, rig_a.nodes, rig_a.scheduler, Seconds{5.0 + i});
    const auto rc =
        c.cycle(Watts{1700.0}, rig_c.nodes, rig_c.scheduler, Seconds{5.0 + i});
    EXPECT_EQ(rb.state, rc.state) << "cycle " << i;
    EXPECT_EQ(rb.targets, rc.targets) << "cycle " << i;
    EXPECT_EQ(rb.transitions, rc.transitions) << "cycle " << i;
    EXPECT_EQ(rb.divergences, rc.divergences) << "cycle " << i;
    EXPECT_EQ(rb.heals, rc.heals) << "cycle " << i;
    EXPECT_EQ(rb.acks, rc.acks) << "cycle " << i;
    EXPECT_EQ(rb.p_low.value(), rc.p_low.value()) << "cycle " << i;
    EXPECT_EQ(rb.divergences, 0u) << "restored shadow tables diverged";
  }
  for (std::size_t i = 0; i < rig_a.nodes.size(); ++i) {
    EXPECT_EQ(rig_a.nodes[i].level(), rig_c.nodes[i].level()) << "node " << i;
  }
}

TEST(Checkpoint, ColdRestartRetrainsButWarmRestartResumesCapped) {
  CappingManagerParams p = quiet_params();
  p.thresholds.training_cycles = 3;
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManager a = make_manager(p);
  a.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 5; ++i) {
    a.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0 + i});
  }
  ASSERT_FALSE(a.thresholds().training());
  const std::string image = encode_checkpoint(a.checkpoint());

  // Training observed a 1700 W peak, so the learned thresholds are
  // P_L = 0.84 × 1700 = 1428 and P_H = 0.93 × 1700 = 1581: a 1500 W
  // reading is yellow for a controller that remembers its training.

  // Cold restart: a whole training period uncapped.
  CappingManager cold = make_manager(p);
  cold.set_candidate_set({0, 1, 2, 3});
  const auto r_cold =
      cold.cycle(Watts{1500.0}, rig.nodes, rig.scheduler, Seconds{6.0});
  EXPECT_TRUE(r_cold.training);
  EXPECT_EQ(r_cold.targets, 0u);

  // Warm restart: capped on the very first cycle.
  CappingManager warm = make_manager(p);
  warm.set_candidate_set({0, 1, 2, 3});
  warm.restore(decode_shard_checkpoint(image));
  const auto r_warm =
      warm.cycle(Watts{1500.0}, rig.nodes, rig.scheduler, Seconds{6.0});
  EXPECT_FALSE(r_warm.training);
  EXPECT_EQ(r_warm.state, PowerState::kYellow);
}

TEST(Checkpoint, TreeCodecRoundTripsAndValidatesZoneCount) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  ZoneTreeManager m = make_tree(2);
  m.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 3; ++i) {
    m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0 + i});
  }
  const TreeCheckpoint cp = m.checkpoint();
  ASSERT_EQ(cp.shards.size(), 2u);
  ASSERT_EQ(cp.hints.size(), 2u);
  const std::string text = encode_checkpoint(cp);
  const TreeCheckpoint decoded = decode_tree_checkpoint(text);
  EXPECT_EQ(encode_checkpoint(decoded), text);

  ZoneTreeManager fresh = make_tree(2);
  fresh.set_candidate_set({0, 1, 2, 3});
  fresh.restore(decoded);
  EXPECT_EQ(fresh.thresholds().p_low().value(),
            m.thresholds().p_low().value());

  ZoneTreeManager wrong_shape = make_tree(3);
  wrong_shape.set_candidate_set({0, 1, 2, 3});
  EXPECT_THROW(wrong_shape.restore(decoded), std::invalid_argument);
}

// -- whole-cluster chaos: blackout, failsafe envelope, warm restart ------

struct ChaosResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  power::ManagerReport pre_restart;  ///< end of phase 2 — the warm restart
                                     ///< starts the lifetime counters over
  power::ManagerReport last;
  std::uint64_t watchdog_engagements = 0;
  std::uint64_t watchdog_transitions = 0;
  std::size_t watchdog_pending_at_end = 0;
};

/// A full-stack controller-chaos run: random root/zone outage windows and
/// stalls on top of lossy telemetry and actuation, a mid-run forced
/// blackout long enough to trip every node's failsafe, and a warm restart
/// from a checkpoint two thirds in.
ChaosResult run_controller_chaos_cluster(std::size_t worker_threads,
                                         bool incremental = true) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 120;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = fault_seed(20260808);
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cfg.privileged_job_fraction = 0.3;
  cfg.watchdog.timeout_cycles = 5;
  cfg.watchdog.safe_level = 2;
  cluster::Cluster cl(cfg);

  CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.75;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.green_collect_stride = 1;
  p.collector.transport.loss_rate = 0.02;
  p.max_sample_age_cycles = 3;
  p.actuation.command_loss_rate = 0.05;
  p.reconciliation.max_retries = 4;
  p.control.outage_rate = 5e-3;
  p.control.outage_duration_cycles = 8;
  p.control.zone_outage_rate = 5e-3;
  p.control.zone_outage_duration_cycles = 6;
  p.control.delay_rate = 0.01;
  p.control.delay_max_cycles = 2;
  p.incremental_context = incremental;
  ZoneTreeParams zp;
  zp.zone_count = 2;
  const auto make_mgr = [&] {
    auto mgr = std::make_unique<ZoneTreeManager>(
        zp, p, [] { return make_policy("mpc"); },
        common::Rng(cfg.seed ^ 0x9d2c5680u));
    mgr->set_candidate_set(cl.controllable_nodes());
    return mgr;
  };
  cl.set_manager(make_mgr());
  cl.start_recording();

  // Phase 1: background chaos from the random windows.
  cl.run(Seconds{120.0});
  // Phase 2: a forced 10-cycle blackout — twice the watchdog timeout, so
  // every node's failsafe must trip — plus a zone-shard drill.
  auto& tree = dynamic_cast<ZoneTreeManager&>(cl.manager());
  tree.control_faults().inject_outage(10);
  tree.control_faults().inject_zone_outage(0, 6);
  cl.run(Seconds{120.0});
  const power::ManagerReport pre_restart = cl.last_report();
  // Phase 3: warm restart — encode/decode through the wire image, restore
  // into a freshly built controller, swap it in mid-run.
  const std::string image =
      encode_checkpoint(dynamic_cast<ZoneTreeManager&>(cl.manager())
                            .checkpoint());
  auto restarted = make_mgr();
  restarted->restore(decode_tree_checkpoint(image));
  cl.set_manager(std::move(restarted));
  cl.run(Seconds{120.0});

  ChaosResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  out.pre_restart = pre_restart;
  out.last = cl.last_report();
  out.watchdog_engagements = cl.watchdog().engagements();
  out.watchdog_transitions = cl.watchdog().failsafe_transitions();
  out.watchdog_pending_at_end = cl.watchdog().pending_count();
  return out;
}

void expect_identical(const ChaosResult& a, const ChaosResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].power_w, b.points[i].power_w) << "tick " << i;
    EXPECT_EQ(a.points[i].state, b.points[i].state) << "tick " << i;
    EXPECT_EQ(a.points[i].targets, b.points[i].targets) << "tick " << i;
    EXPECT_EQ(a.points[i].transitions, b.points[i].transitions)
        << "tick " << i;
    EXPECT_EQ(a.points[i].divergences, b.points[i].divergences)
        << "tick " << i;
    EXPECT_EQ(a.points[i].heals, b.points[i].heals) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job " << i;
    EXPECT_EQ(a.finished[i].energy_j, b.finished[i].energy_j) << "job " << i;
  }
  EXPECT_EQ(a.watchdog_engagements, b.watchdog_engagements);
  EXPECT_EQ(a.watchdog_transitions, b.watchdog_transitions);
  EXPECT_EQ(a.pre_restart.ctrl_outage_cycles, b.pre_restart.ctrl_outage_cycles);
  EXPECT_EQ(a.pre_restart.ctrl_zone_outage_cycles,
            b.pre_restart.ctrl_zone_outage_cycles);
}

TEST(ControllerChaos, FailsafeBoundsOverPowerAndRunStaysDeterministic) {
  const ChaosResult serial = run_controller_chaos_cluster(1);
  ASSERT_GT(serial.points.size(), 300u);

  // The chaos actually happened: the forced blackout outlived the
  // watchdog timeout, so failsafes engaged and were later adopted. (The
  // warm restart deliberately starts lifetime counters over, so the
  // phase-2 report is the one that witnessed the blackout.)
  EXPECT_GT(serial.pre_restart.ctrl_outage_cycles, 0u);
  EXPECT_GT(serial.pre_restart.ctrl_zone_outage_cycles, 0u);
  EXPECT_GT(serial.watchdog_engagements, 0u);
  EXPECT_GT(serial.watchdog_transitions, 0u);
  // The run ends healthy: every failsafe level was adopted back.
  EXPECT_EQ(serial.watchdog_pending_at_end, 0u);

  // The acceptance invariant: with the controller dead, accounted power
  // may sit above P_H only until the watchdog trips — never for longer
  // than the timeout plus actuation slack. (Ticks, not control cycles:
  // control_period / tick = 4 ticks per cycle; timeout 5 cycles + 3
  // cycles of delivery/thermal slack.)
  const std::size_t ticks_per_cycle = 4;
  const std::size_t bound = (5 + 3) * ticks_per_cycle;
  std::size_t over = 0;
  std::size_t worst = 0;
  for (const metrics::CyclePoint& pt : serial.points) {
    if (pt.p_high_w > 0.0 && pt.power_w > pt.p_high_w) {
      ++over;
      worst = std::max(worst, over);
    } else {
      over = 0;
    }
  }
  EXPECT_LE(worst, bound)
      << "power sat above P_H for " << worst
      << " consecutive ticks despite the failsafe watchdog";

  // Bit-identical under parallel sweeps — outage windows, watchdog
  // stepping, adoption and the warm restart are all serial state.
  const ChaosResult four = run_controller_chaos_cluster(4);
  expect_identical(serial, four);
}

// The incremental context plane under controller chaos: outage windows
// leave shards with stale persistent contexts, the forced blackout makes
// the watchdog rewrite levels behind the controller's back (adoption is a
// dirty-set source, not a telemetry event), and the phase-3 warm restart
// swaps in a controller with cold contexts mid-fault. Decisions, watchdog
// stepping and job outcomes must still be bit-identical to full rebuilds,
// serial and sharded.
TEST(ControllerChaos, IncrementalContextMatchesRebuild) {
  const ChaosResult inc = run_controller_chaos_cluster(1, true);
  ASSERT_GT(inc.points.size(), 300u);
  EXPECT_GT(inc.watchdog_engagements, 0u);
  const ChaosResult reb = run_controller_chaos_cluster(1, false);
  expect_identical(inc, reb);
  const ChaosResult reb4 = run_controller_chaos_cluster(4, false);
  expect_identical(inc, reb4);
}

}  // namespace
}  // namespace pcap::power
