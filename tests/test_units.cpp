#include "common/units.hpp"

#include <gtest/gtest.h>

namespace pcap {
namespace {

using namespace pcap::literals;

TEST(Units, WattsArithmetic) {
  const Watts a{100.0};
  const Watts b{50.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);  // ratio is dimensionless
}

TEST(Units, Comparisons) {
  EXPECT_LT(Watts{1.0}, Watts{2.0});
  EXPECT_GT(Watts{3.0}, Watts{2.0});
  EXPECT_EQ(Watts{2.0}, Watts{2.0});
  EXPECT_LE(Watts{2.0}, Watts{2.0});
  EXPECT_NE(Watts{2.0}, Watts{2.1});
}

TEST(Units, CompoundAssignment) {
  Watts w{10.0};
  w += Watts{5.0};
  EXPECT_DOUBLE_EQ(w.value(), 15.0);
  w -= Watts{3.0};
  EXPECT_DOUBLE_EQ(w.value(), 12.0);
  w *= 0.5;
  EXPECT_DOUBLE_EQ(w.value(), 6.0);
}

TEST(Units, Negation) {
  EXPECT_DOUBLE_EQ((-Watts{7.0}).value(), -7.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = Watts{100.0} * Seconds{60.0};
  EXPECT_DOUBLE_EQ(e.value(), 6000.0);
  const Joules e2 = Seconds{60.0} * Watts{100.0};
  EXPECT_DOUBLE_EQ(e2.value(), 6000.0);
}

TEST(Units, EnergyOverTimeIsPower) {
  const Watts p = Joules{6000.0} / Seconds{60.0};
  EXPECT_DOUBLE_EQ(p.value(), 100.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((5_kW).value(), 5000.0);
  EXPECT_DOUBLE_EQ((1.5_kW).value(), 1500.0);
  EXPECT_DOUBLE_EQ((100_W).value(), 100.0);
  EXPECT_DOUBLE_EQ((2_h).value(), 7200.0);
  EXPECT_DOUBLE_EQ((5_min).value(), 300.0);
  EXPECT_DOUBLE_EQ((2.93_GHz).value(), 2.93e9);
  EXPECT_DOUBLE_EQ((800_MHz).value(), 8e8);
  EXPECT_DOUBLE_EQ((1_GiB).value(), 1073741824.0);
}

TEST(Units, HertzGigahertzAccessor) {
  EXPECT_DOUBLE_EQ((2.93_GHz).gigahertz(), 2.93);
}

TEST(Units, BytesMegabytes) {
  EXPECT_DOUBLE_EQ((512_MiB).megabytes(), 512.0);
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);
}

TEST(UnitsFormat, WattsScales) {
  EXPECT_EQ(to_string(Watts{12.0}), "12 W");
  EXPECT_EQ(to_string(Watts{4550.0}), "4.55 kW");
  EXPECT_EQ(to_string(Watts{12.659e6}), "12.7 MW");
}

TEST(UnitsFormat, SecondsScales) {
  EXPECT_EQ(to_string(Seconds{30.0}), "30 s");
  EXPECT_EQ(to_string(Seconds{90.0}), "1.5 min");
  EXPECT_EQ(to_string(Seconds{7200.0}), "2 h");
}

TEST(UnitsFormat, JoulesScales) {
  EXPECT_EQ(to_string(Joules{500.0}), "500 J");
  EXPECT_EQ(to_string(Joules{2500.0}), "2.5 kJ");
  EXPECT_EQ(to_string(Joules{3.2e6}), "3.2 MJ");
  EXPECT_EQ(to_string(Joules{7.5e9}), "7.5 GJ");
}

TEST(UnitsFormat, Hertz) {
  EXPECT_EQ(to_string(Hertz{2.93e9}), "2.93 GHz");
}

}  // namespace
}  // namespace pcap
