#include "baselines/feedback_manager.hpp"

#include <gtest/gtest.h>

#include "baselines/budget_manager.hpp"

#include "hw/node_spec.hpp"
#include "workload/npb.hpp"

namespace pcap::baselines {
namespace {

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
    for (auto& node : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = 0.9;
      op.mem_used = node.spec().mem_total * 0.4;
      op.mem_total = node.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = node.spec().nic_bandwidth;
      node.set_operating_point(op);
      node.set_busy(true);
    }
  }
};

FeedbackParams params() {
  FeedbackParams p;
  p.setpoint = Watts{1000.0};
  p.gain = 1.0;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  return p;
}

TEST(Feedback, ThrottlesOnPositiveError) {
  Rig rig(4);
  FeedbackManager m(params(), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});
  const auto r =
      m.cycle(Watts{1100.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_GT(r.targets, 0u);
  bool any_throttled = false;
  for (const auto& n : rig.nodes) any_throttled |= !n.at_highest();
  EXPECT_TRUE(any_throttled);
}

TEST(Feedback, ThrottleScalesWithError) {
  Rig big(8);
  Rig small(8);
  FeedbackManager m_big(params(), common::Rng(1));
  FeedbackManager m_small(params(), common::Rng(1));
  m_big.set_candidate_set({0, 1, 2, 3, 4, 5, 6, 7});
  m_small.set_candidate_set({0, 1, 2, 3, 4, 5, 6, 7});
  const auto r_small =
      m_small.cycle(Watts{1020.0}, small.nodes, small.scheduler, Seconds{1.0});
  const auto r_big =
      m_big.cycle(Watts{1500.0}, big.nodes, big.scheduler, Seconds{1.0});
  EXPECT_GT(r_big.targets, r_small.targets);
}

TEST(Feedback, HoldsInsideHysteresisBand) {
  Rig rig(4);
  FeedbackManager m(params(), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});
  // Slightly below the setpoint: inside the 2% band, no action.
  const auto r =
      m.cycle(Watts{990.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(r.targets, 0u);
}

TEST(Feedback, RestoresWellBelowSetpoint) {
  Rig rig(4);
  FeedbackManager m(params(), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});
  // Throttle hard first.
  for (int i = 0; i < 5; ++i) {
    m.cycle(Watts{1600.0}, rig.nodes, rig.scheduler,
            Seconds{static_cast<double>(i + 1)});
  }
  int throttled_levels = 0;
  for (const auto& n : rig.nodes) throttled_levels += 9 - n.level();
  ASSERT_GT(throttled_levels, 0);
  // Far below setpoint: restore.
  m.cycle(Watts{500.0}, rig.nodes, rig.scheduler, Seconds{10.0});
  int after = 0;
  for (const auto& n : rig.nodes) after += 9 - n.level();
  EXPECT_LT(after, throttled_levels);
}

TEST(Feedback, IdleNodesNotThrottled) {
  Rig rig(2);
  rig.nodes[1].set_busy(false);
  FeedbackManager m(params(), common::Rng(1));
  m.set_candidate_set({0, 1});
  m.cycle(Watts{2000.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_TRUE(rig.nodes[1].at_highest());
}

TEST(Feedback, BadParamsThrow) {
  FeedbackParams p = params();
  p.setpoint = Watts{0.0};
  EXPECT_THROW(FeedbackManager(p, common::Rng(1)), std::invalid_argument);
  p = params();
  p.gain = 0.0;
  EXPECT_THROW(FeedbackManager(p, common::Rng(1)), std::invalid_argument);
  p = params();
  p.hysteresis = -0.1;
  EXPECT_THROW(FeedbackManager(p, common::Rng(1)), std::invalid_argument);
}

TEST(Feedback, Name) {
  FeedbackManager m(params(), common::Rng(1));
  EXPECT_EQ(m.name(), "feedback");
}

BudgetParams budget_params(double watts) {
  BudgetParams p;
  p.global_budget = Watts{watts};
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  return p;
}

TEST(Budget, GenerousBudgetKeepsNodesAtTop) {
  Rig rig(4);
  BudgetManager m(budget_params(4.0 * 500.0), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});
  m.cycle(Watts{1200.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
}

TEST(Budget, TightBudgetThrottlesEveryNode) {
  Rig rig(4);
  BudgetManager m(budget_params(4.0 * 250.0), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});
  m.cycle(Watts{1400.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  for (const auto& n : rig.nodes) {
    EXPECT_FALSE(n.at_highest());
    // Each node fits its budget at the chosen level.
    EXPECT_LE(n.estimated_power().value(), 260.0 + 60.0);  // some slack for
    // the even/demand split: budgets differ slightly per node.
  }
}

TEST(Budget, DemandProportionalAllocationFavoursBusyNodes) {
  Rig rig(2);
  // Node 0 hot, node 1 idle-ish.
  hw::OperatingPoint cool = rig.nodes[1].operating_point();
  cool.cpu_utilization = 0.05;
  rig.nodes[1].set_operating_point(cool);

  BudgetParams p = budget_params(2.0 * 300.0);
  p.demand_weight = 0.9;
  BudgetManager m(p, common::Rng(1));
  m.set_candidate_set({0, 1});
  m.cycle(Watts{700.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  const auto& budgets = m.last_budgets();
  ASSERT_EQ(budgets.size(), 2u);
  EXPECT_GT(budgets[0], budgets[1]);
}

TEST(Budget, BudgetsSumToGlobal) {
  Rig rig(6);
  BudgetManager m(budget_params(1800.0), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3, 4, 5});
  m.cycle(Watts{2000.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  Watts total{0.0};
  for (const Watts b : m.last_budgets()) total += b;
  EXPECT_NEAR(total.value(), 1800.0, 1e-6);
}

TEST(Budget, RecoversWhenDemandDrops) {
  Rig rig(2);
  BudgetManager m(budget_params(2.0 * 260.0), common::Rng(1));
  m.set_candidate_set({0, 1});
  m.cycle(Watts{800.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  ASSERT_FALSE(rig.nodes[0].at_highest());
  // Nodes go idle: per-node estimates fall, the budget re-admits the top
  // level.
  for (auto& n : rig.nodes) {
    hw::OperatingPoint op = n.operating_point();
    op.cpu_utilization = 0.02;
    op.nic_bytes = Bytes{0.0};
    op.mem_used = Bytes{0.0};
    n.set_operating_point(op);
    n.set_busy(false);
  }
  m.cycle(Watts{300.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  EXPECT_TRUE(rig.nodes[0].at_highest());
}

TEST(Budget, BadParamsThrow) {
  EXPECT_THROW(BudgetManager(budget_params(0.0), common::Rng(1)),
               std::invalid_argument);
  BudgetParams p = budget_params(100.0);
  p.demand_weight = 1.5;
  EXPECT_THROW(BudgetManager(p, common::Rng(1)), std::invalid_argument);
}

TEST(Budget, Name) {
  BudgetManager m(budget_params(100.0), common::Rng(1));
  EXPECT_EQ(m.name(), "budget");
}

TEST(Feedback, ConvergesUnderProportionalControl) {
  // Drive the manager with a synthetic plant: power proportional to the
  // average level. It should settle near the setpoint without ringing
  // down to the floor.
  Rig rig(8);
  FeedbackManager m(params(), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3, 4, 5, 6, 7});
  double measured = 1400.0;
  for (int i = 0; i < 50; ++i) {
    m.cycle(Watts{measured}, rig.nodes, rig.scheduler,
            Seconds{static_cast<double>(i + 1)});
    double level_sum = 0.0;
    for (const auto& n : rig.nodes) level_sum += n.level();
    // Plant: 600 W base + 800 W scaled by mean level ratio.
    measured = 600.0 + 800.0 * (level_sum / (8.0 * 9.0));
  }
  EXPECT_NEAR(measured, 1000.0, 120.0);
}

}  // namespace
}  // namespace pcap::baselines
