#include "metrics/performance.hpp"

#include <gtest/gtest.h>

#include "workload/npb.hpp"

namespace pcap::metrics {
namespace {

JobRecord rec(double baseline, double actual) {
  JobRecord r;
  r.baseline_s = baseline;
  r.actual_s = actual;
  return r;
}

TEST(JobRecord, SpeedRatioAndSlowdown) {
  const JobRecord r = rec(100.0, 125.0);
  EXPECT_DOUBLE_EQ(r.speed_ratio(), 0.8);
  EXPECT_DOUBLE_EQ(r.slowdown_percent(), 25.0);
}

TEST(JobRecord, LosslessJobScoresOne) {
  const JobRecord r = rec(100.0, 100.0);
  EXPECT_DOUBLE_EQ(r.speed_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.slowdown_percent(), 0.0);
}

TEST(MakeRecord, FromFinishedJob) {
  workload::Job j(7, workload::npb_by_name("ep", workload::NpbClass::kC), 12,
                  Seconds{0.0});
  j.start({0}, {12}, Seconds{10.0});
  j.advance(Seconds{1e9}, 1.0, Seconds{1e9 + 10.0});
  const JobRecord r = make_record(j);
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.app, "EP");
  EXPECT_EQ(r.nprocs, 12);
  EXPECT_NEAR(r.actual_s, r.baseline_s, 1e-6);
}

TEST(MakeRecord, UnfinishedThrows) {
  workload::Job j(7, workload::npb_by_name("ep", workload::NpbClass::kC), 12,
                  Seconds{0.0});
  EXPECT_THROW(make_record(j), std::invalid_argument);
}

TEST(Summary, EmptyIsIdentity) {
  const PerformanceSummary s = summarize_performance({});
  EXPECT_EQ(s.finished_jobs, 0u);
  EXPECT_DOUBLE_EQ(s.performance, 1.0);
  EXPECT_EQ(s.lossless_jobs, 0u);
}

TEST(Summary, PaperFormula) {
  // Performance(cap) = mean of T_j / T_cap,j.
  const std::vector<JobRecord> jobs = {rec(100.0, 100.0), rec(100.0, 125.0)};
  const PerformanceSummary s = summarize_performance(jobs);
  EXPECT_DOUBLE_EQ(s.performance, (1.0 + 0.8) / 2.0);
  EXPECT_EQ(s.finished_jobs, 2u);
}

TEST(Summary, CpljCountsWithinTolerance) {
  const std::vector<JobRecord> jobs = {
      rec(100.0, 100.0),   // exact
      rec(100.0, 100.4),   // within default 0.5%
      rec(100.0, 101.0),   // outside
  };
  const PerformanceSummary s = summarize_performance(jobs);
  EXPECT_EQ(s.lossless_jobs, 2u);
  EXPECT_NEAR(s.lossless_fraction, 2.0 / 3.0, 1e-12);
}

TEST(Summary, CustomTolerance) {
  const std::vector<JobRecord> jobs = {rec(100.0, 101.0)};
  EXPECT_EQ(summarize_performance(jobs, 0.02).lossless_jobs, 1u);
  EXPECT_EQ(summarize_performance(jobs, 0.0).lossless_jobs, 0u);
}

TEST(Summary, NegativeToleranceThrows) {
  EXPECT_THROW(summarize_performance({}, -0.1), std::invalid_argument);
}

TEST(Summary, SlowdownStatistics) {
  const std::vector<JobRecord> jobs = {rec(100.0, 110.0), rec(100.0, 130.0)};
  const PerformanceSummary s = summarize_performance(jobs);
  EXPECT_DOUBLE_EQ(s.mean_slowdown_percent, 20.0);
  EXPECT_DOUBLE_EQ(s.worst_slowdown_percent, 30.0);
}

TEST(JobRecord, EnergyDelayProduct) {
  JobRecord r = rec(100.0, 120.0);
  r.energy_j = 500.0;
  EXPECT_DOUBLE_EQ(r.energy_delay(0), 500.0);
  EXPECT_DOUBLE_EQ(r.energy_delay(1), 500.0 * 120.0);
  EXPECT_DOUBLE_EQ(r.energy_delay(2), 500.0 * 120.0 * 120.0);
  EXPECT_THROW(r.energy_delay(-1), std::invalid_argument);
}

TEST(SummarizeByApp, GroupsAndAverages) {
  JobRecord a = rec(100.0, 110.0);
  a.app = "EP";
  a.energy_j = 200.0;
  JobRecord b = rec(100.0, 130.0);
  b.app = "EP";
  b.energy_j = 400.0;
  JobRecord c = rec(50.0, 50.0);
  c.app = "CG";
  c.energy_j = 100.0;

  const auto by_app = summarize_by_app({a, b, c});
  ASSERT_EQ(by_app.size(), 2u);
  // Sorted by name: CG first.
  EXPECT_EQ(by_app[0].app, "CG");
  EXPECT_EQ(by_app[0].jobs, 1u);
  EXPECT_DOUBLE_EQ(by_app[0].mean_energy_j, 100.0);
  EXPECT_EQ(by_app[1].app, "EP");
  EXPECT_EQ(by_app[1].jobs, 2u);
  EXPECT_DOUBLE_EQ(by_app[1].mean_energy_j, 300.0);
  EXPECT_DOUBLE_EQ(by_app[1].mean_duration_s, 120.0);
  EXPECT_DOUBLE_EQ(by_app[1].mean_slowdown_percent, 20.0);
}

TEST(SummarizeByApp, EmptyInput) {
  EXPECT_TRUE(summarize_by_app({}).empty());
}

TEST(Summary, ZeroDurationJobCountsAsLossless) {
  // Regression: a job whose capped duration interpolated to 0 within one
  // tick used to contribute speed_ratio() == 0, dragging Performance(cap)
  // toward 0 for a job that lost nothing. It now counts as ratio 1.
  const std::vector<JobRecord> jobs = {rec(100.0, 0.0), rec(100.0, 100.0)};
  const PerformanceSummary s = summarize_performance(jobs);
  EXPECT_DOUBLE_EQ(s.performance, 1.0);
  EXPECT_EQ(s.lossless_jobs, 2u);
  EXPECT_EQ(s.zero_duration_jobs, 1u);
  EXPECT_DOUBLE_EQ(s.mean_slowdown_percent, 0.0);
}

TEST(Summary, NegativeDurationTreatedAsZero) {
  const std::vector<JobRecord> jobs = {rec(100.0, -1.0)};
  const PerformanceSummary s = summarize_performance(jobs);
  EXPECT_DOUBLE_EQ(s.performance, 1.0);
  EXPECT_EQ(s.zero_duration_jobs, 1u);
}

TEST(SummarizeByApp, ZeroDurationJobDoesNotPoisonMeans) {
  // The by-app aggregation accumulates locally and divides once; a
  // degenerate record only affects its own contribution.
  JobRecord a = rec(100.0, 0.0);
  a.app = "EP";
  a.energy_j = 0.0;
  JobRecord b = rec(100.0, 100.0);
  b.app = "EP";
  b.energy_j = 300.0;
  const auto by_app = summarize_by_app({a, b});
  ASSERT_EQ(by_app.size(), 1u);
  EXPECT_EQ(by_app[0].jobs, 2u);
  EXPECT_DOUBLE_EQ(by_app[0].mean_energy_j, 150.0);
  EXPECT_DOUBLE_EQ(by_app[0].mean_duration_s, 50.0);
}

TEST(EnergyDelayProduct, ZeroExponentIsEnergy) {
  // E x D^0 == E even for a zero-duration delay (0^0 treated as 1 by
  // the loop formulation — no pow(0, 0) surprise).
  JobRecord r = rec(100.0, 0.0);
  r.energy_j = 500.0;
  EXPECT_DOUBLE_EQ(r.energy_delay(0), 500.0);
  EXPECT_DOUBLE_EQ(r.energy_delay(1), 0.0);
}

TEST(Summary, UncappedRunScoresPerfectly) {
  std::vector<JobRecord> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(rec(50.0 + i, 50.0 + i));
  const PerformanceSummary s = summarize_performance(jobs);
  EXPECT_DOUBLE_EQ(s.performance, 1.0);
  EXPECT_EQ(s.lossless_jobs, 10u);
  EXPECT_DOUBLE_EQ(s.lossless_fraction, 1.0);
}

}  // namespace
}  // namespace pcap::metrics
