#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace pcap::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Seconds{3.0}, [&] { order.push_back(3); });
  q.schedule(Seconds{1.0}, [&] { order.push_back(1); });
  q.schedule(Seconds{2.0}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Seconds{5.0}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(Seconds{7.0}, [] {});
  q.schedule(Seconds{2.0}, [] {});
  EXPECT_EQ(q.next_time(), Seconds{2.0});
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(Seconds{1.0}, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(Seconds{1.0}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Seconds{1.0}, [&] { order.push_back(1); });
  const EventId id = q.schedule(Seconds{2.0}, [&] { order.push_back(2); });
  q.schedule(Seconds{3.0}, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.schedule(Seconds{1.0}, [] {});
  q.schedule(Seconds{5.0}, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), Seconds{5.0});
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(Seconds{1.0}, [] {});
  q.schedule(Seconds{2.0}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(Seconds{1.0}, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

// Property: pops come out sorted by (time, insertion sequence) for random
// schedules with random cancellations.
class EventQueueOrdering : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueOrdering, SortedUnderRandomLoad) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    ids.push_back(q.schedule(Seconds{t}, [] {}));
  }
  // Cancel a random third.
  for (const EventId id : ids) {
    if (rng.bernoulli(0.33)) q.cancel(id);
  }
  Seconds last{-1.0};
  std::uint64_t last_seq = 0;
  bool first = true;
  while (!q.empty()) {
    const Event ev = q.pop();
    if (!first) {
      ASSERT_GE(ev.time, last);
      if (ev.time == last) {
        ASSERT_GT(ev.sequence, last_seq);
      }
    }
    last = ev.time;
    last_seq = ev.sequence;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrdering, ::testing::Range(1, 9));

}  // namespace
}  // namespace pcap::sim
