// System-level invariant sweeps: properties that must hold for every
// policy and seed on full training+measurement runs.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"

namespace pcap::cluster {
namespace {

ExperimentConfig tiny(std::uint64_t seed) {
  ExperimentConfig cfg = small_scenario(seed);
  cfg.cluster.num_nodes = 12;
  cfg.calibration_duration = Seconds{900.0};
  cfg.training = Seconds{900.0};
  cfg.measured = Seconds{1800.0};
  return cfg;
}

// Every registry policy, three seeds: the run completes, performance is
// sane, the state accounting adds up, and capping never *raises* the
// peak.
class PolicyInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PolicyInvariants, EndToEndSanity) {
  const auto& [policy, seed] = GetParam();
  ExperimentConfig cfg = tiny(static_cast<std::uint64_t>(seed) * 101);
  const Watts peak =
      probe_uncapped_peak(cfg.cluster, cfg.calibration_duration);
  cfg.provision = peak * cfg.provision_fraction;

  cfg.manager = "none";
  const ExperimentResult none = run_experiment(cfg);
  cfg.manager = policy;
  const ExperimentResult r = run_experiment(cfg);

  EXPECT_GT(r.perf.finished_jobs, 0u);
  EXPECT_GT(r.perf.performance, 0.75) << policy;
  EXPECT_LE(r.perf.performance, 1.0 + 0.01) << policy;
  EXPECT_LE(r.perf.lossless_fraction, 1.0) << policy;
  // Capping must not raise the peak (small slack for meter noise).
  EXPECT_LE(r.p_max.value(), none.p_max.value() * 1.02) << policy;
  // ...and must not raise total energy (throttling only removes power).
  EXPECT_LE(r.energy.value(), none.energy.value() * 1.02) << policy;
  // State cycles account for every measured tick.
  EXPECT_EQ(r.green_cycles + r.yellow_cycles + r.red_cycles,
            static_cast<std::size_t>(cfg.measured.value()))
      << policy;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::Combine(::testing::Values("mpc", "mpc-c", "lpc", "lpc-c",
                                         "bfp", "hri", "hri-c", "ht", "ht-c"),
                       ::testing::Values(1, 2)));

// After the offered load stops, Algorithm 1's steady-green restore must
// eventually return every degraded node to its top level.
class RecoveryInvariant : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryInvariant, NodesReturnToTopAfterQuiescence) {
  ExperimentConfig cfg = tiny(static_cast<std::uint64_t>(GetParam()) * 53);
  cfg.manager = "mpc";
  cfg.training = Seconds{0.0};

  Cluster cl(cfg.cluster);
  cl.set_manager(make_manager(cfg, cfg.cluster, Watts{3000.0},
                              cl.controllable_nodes()));
  // Run under load long enough for throttling to happen.
  cl.run(Seconds{3600.0});

  // Build a quiescent cluster continuation: stop generating jobs by
  // swapping in an empty workload via a fresh cluster is not possible
  // in-place, so instead force a deep degrade and observe restore while
  // the system is green (power far below thresholds).
  for (auto& node : cl.nodes()) node.set_level(0);
  cl.run(Seconds{1200.0});  // plenty of green cycles at T_g = 10

  // The engine only restores nodes in A_degraded (those it degraded
  // itself); our forced set_level(0) bypassed it, so restoration happens
  // only for nodes the engine later throttles. The invariant we can
  // assert: no node sits at the floor through a steady-green restore pass
  // (the engine never leaves its own A_degraded stuck). The live workload
  // keeps oscillating between states, so rather than hoping the run ends
  // inside steady green, step until the green timer shows a restore pass
  // has just fired — at that instant every degraded node must have been
  // lifted off the floor.
  const auto& mgr =
      dynamic_cast<const power::CappingManager&>(cl.manager());
  const std::int64_t tg = mgr.engine().params().steady_green_cycles;
  Seconds waited{0.0};
  while (mgr.engine().green_timer() <= tg && waited < Seconds{1200.0}) {
    cl.run(Seconds{1.0});
    waited += Seconds{1.0};
  }
  if (mgr.engine().green_timer() <= tg) {
    GTEST_SKIP() << "system never reached steady green in the budget";
  }
  for (const hw::NodeId id : mgr.engine().degraded()) {
    EXPECT_FALSE(cl.nodes()[id].at_lowest())
        << "node " << id << " stuck at the floor during steady green";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryInvariant, ::testing::Range(1, 4));

// Determinism across the whole experiment pipeline: identical configs
// give bit-identical results.
class DeterminismInvariant : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismInvariant, ExperimentsAreReproducible) {
  ExperimentConfig cfg = tiny(static_cast<std::uint64_t>(GetParam()) * 7);
  cfg.manager = GetParam() % 2 == 0 ? "mpc" : "hri";
  cfg.provision = Watts{3200.0};
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.p_max.value(), b.p_max.value());
  EXPECT_DOUBLE_EQ(a.perf.performance, b.perf.performance);
  EXPECT_EQ(a.perf.finished_jobs, b.perf.finished_jobs);
  EXPECT_EQ(a.yellow_cycles, b.yellow_cycles);
  EXPECT_DOUBLE_EQ(a.delta_pxt, b.delta_pxt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismInvariant, ::testing::Range(1, 5));

// The paper's central safety claim, as a property: with MPC capping on
// and thresholds learned, the red state is at most a transient (a tiny
// fraction of the measured window), and power stays below P_H virtually
// always.
class SafetyInvariant : public ::testing::TestWithParam<int> {};

TEST_P(SafetyInvariant, RedIsAtMostTransientUnderMpc) {
  ExperimentConfig cfg = tiny(static_cast<std::uint64_t>(GetParam()) * 211);
  cfg.manager = "mpc";
  const ExperimentResult r = run_experiment(cfg);
  const double red_fraction =
      static_cast<double>(r.red_cycles) / cfg.measured.value();
  EXPECT_LT(red_fraction, 0.005) << "red for " << r.red_cycles << " s";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetyInvariant, ::testing::Range(1, 6));

}  // namespace
}  // namespace pcap::cluster
