// Integration tests: full training + measurement experiments on a small
// cluster, checking the paper's qualitative claims hold end to end.
#include "cluster/experiment.hpp"

#include <gtest/gtest.h>

#include "cluster/scenario.hpp"

namespace pcap::cluster {
namespace {

ExperimentConfig quick_config(std::uint64_t seed = 7) {
  ExperimentConfig cfg = small_scenario(seed);
  cfg.cluster.num_nodes = 12;
  cfg.calibration_duration = Seconds{900.0};
  cfg.training = Seconds{900.0};
  cfg.measured = Seconds{2700.0};
  return cfg;
}

TEST(Experiment, ProbePeakIsPositiveAndDeterministic) {
  const ExperimentConfig cfg = quick_config();
  const Watts a = probe_uncapped_peak(cfg.cluster, Seconds{600.0});
  const Watts b = probe_uncapped_peak(cfg.cluster, Seconds{600.0});
  EXPECT_GT(a, Watts{0.0});
  EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(Experiment, UncappedRunIsPerfect) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "none";
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.manager, "none");
  EXPECT_NEAR(r.perf.performance, 1.0, 0.01);
  EXPECT_GT(r.perf.finished_jobs, 0u);
  EXPECT_GT(r.p_max, Watts{0.0});
  EXPECT_GE(r.p_max, r.mean_power);
}

TEST(Experiment, CappingReducesOverspendAndKeepsPerformance) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "none";
  const ExperimentResult none = run_experiment(cfg);
  cfg.manager = "mpc";
  const ExperimentResult mpc = run_experiment(cfg);

  // The headline claims, scaled down: overspend drops substantially,
  // peak power does not rise, performance stays within a few percent.
  EXPECT_LT(mpc.delta_pxt, none.delta_pxt);
  EXPECT_LE(mpc.p_max.value(), none.p_max.value() * 1.01);
  EXPECT_GT(mpc.perf.performance, 0.9);
  EXPECT_GT(mpc.yellow_cycles, 0u);
}

TEST(Experiment, EveryPolicyRunsEndToEnd) {
  for (const char* manager :
       {"mpc", "mpc-c", "lpc", "lpc-c", "bfp", "hri", "hri-c", "uniform",
        "sla", "feedback", "budget"}) {
    ExperimentConfig cfg = quick_config();
    cfg.manager = manager;
    cfg.measured = Seconds{900.0};
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_EQ(r.manager, manager);
    EXPECT_GT(r.p_max, Watts{0.0}) << manager;
    EXPECT_GT(r.perf.finished_jobs, 0u) << manager;
  }
}

TEST(Experiment, UnknownManagerThrows) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "quantum";
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, ExplicitProvisionSkipsCalibration) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  cfg.provision = Watts{3000.0};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.provision, Watts{3000.0});
}

TEST(Experiment, CandidateCountLimitsSet) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  cfg.candidate_count = 4;
  cfg.measured = Seconds{900.0};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.candidate_count, 4u);
}

TEST(Experiment, ZeroCandidatesMeansNoCapping) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  cfg.candidate_count = 0;
  cfg.measured = Seconds{900.0};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.candidate_count, 0u);
  EXPECT_EQ(r.yellow_cycles, 0u);  // NoCappingManager reports green always
  EXPECT_NEAR(r.perf.performance, 1.0, 0.01);
}

TEST(Experiment, LargerCandidateSetCapsNoWorse) {
  ExperimentConfig cfg = quick_config(11);
  cfg.manager = "mpc";
  cfg.candidate_count = 2;
  const ExperimentResult small = run_experiment(cfg);
  cfg.candidate_count = -1;
  const ExperimentResult all = run_experiment(cfg);
  // More controllable nodes -> at least as much overspend suppression
  // (allow small numerical slack: the runs differ stochastically).
  EXPECT_LE(all.delta_pxt, small.delta_pxt + 0.002);
}

TEST(Experiment, StateCyclesSumToMeasuredTicks) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.green_cycles + r.yellow_cycles + r.red_cycles,
            static_cast<std::size_t>(cfg.measured.value()));
}

TEST(Experiment, ThresholdsAreLearnedInPaperRatios) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.p_low, Watts{0.0});
  EXPECT_NEAR(r.p_low.value() / r.p_high.value(), 0.84 / 0.93, 1e-6);
}

TEST(Experiment, HeterogeneousScenarioCapsEndToEnd) {
  ExperimentConfig cfg = heterogeneous_scenario(3);
  cfg.training = Seconds{900.0};
  cfg.measured = Seconds{1800.0};
  cfg.manager = "mpc";
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.perf.finished_jobs, 0u);
  EXPECT_GT(r.perf.performance, 0.85);
}

TEST(Experiment, CappingSurvivesTelemetryLoss) {
  // Failure injection: 20% of agent reports lost, the rest a cycle late.
  // The architecture acts on the freshest delivered estimates and must
  // still suppress the overspend relative to no capping.
  ExperimentConfig cfg = quick_config(13);
  cfg.manager = "none";
  const ExperimentResult none = run_experiment(cfg);

  cfg.manager = "mpc";
  cfg.transport.loss_rate = 0.2;
  cfg.transport.delay_cycles = 1;
  const ExperimentResult mpc = run_experiment(cfg);
  EXPECT_LT(mpc.delta_pxt, none.delta_pxt);
  EXPECT_GT(mpc.perf.performance, 0.85);
  EXPECT_GT(mpc.yellow_cycles, 0u);
}

TEST(Experiment, DynamicCandidatesWithPrivilegedJobs) {
  ExperimentConfig cfg = quick_config(17);
  cfg.manager = "mpc";
  cfg.dynamic_candidates = true;
  cfg.cluster.privileged_job_fraction = 0.25;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.perf.finished_jobs, 0u);
  // Candidate count reflects the last selection (may exclude privileged
  // nodes), never more than the machine.
  EXPECT_LE(r.candidate_count, cfg.cluster.num_nodes);
}

TEST(Experiment, ManagerUtilizationPositiveWhenMonitoring) {
  ExperimentConfig cfg = quick_config();
  cfg.manager = "mpc";
  cfg.measured = Seconds{900.0};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.mean_manager_utilization, 0.0);
}

}  // namespace
}  // namespace pcap::cluster
