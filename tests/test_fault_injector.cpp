#include "telemetry/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "hw/node_spec.hpp"
#include "telemetry/collector.hpp"

namespace pcap::telemetry {
namespace {

/// Seed-independence properties are swept across PCAP_FAULT_SEED=1..N in
/// CI; tests with calibrated expectations keep their fixed seeds.
std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PCAP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

NodeSample make_sample(hw::NodeId id, double watts = 300.0) {
  NodeSample s;
  s.node = id;
  s.estimated_power = Watts{watts};
  s.busy = true;
  return s;
}

TEST(FaultParams, DisabledByDefault) {
  const FaultParams p;
  EXPECT_FALSE(p.enabled());
  p.validate();  // defaults are valid
}

TEST(FaultParams, AnyActiveChannelEnables) {
  FaultParams p;
  p.agent_dropout_rate = 0.1;
  EXPECT_TRUE(p.enabled());
  p = FaultParams{};
  p.crash_rate = 0.1;
  EXPECT_TRUE(p.enabled());
  p = FaultParams{};
  p.corruption_rate = 0.1;
  EXPECT_TRUE(p.enabled());
}

TEST(FaultParams, BadRatesThrow) {
  FaultParams p;
  p.agent_dropout_rate = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultParams{};
  p.corruption_rate = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultParams{};
  p.crash_rate = 0.1;
  p.crash_duration_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FaultInjector, UnregisteredNodePassesThrough) {
  FaultInjector inj(FaultParams{}, common::Rng(1));
  NodeSample s = make_sample(5);
  const auto out = inj.apply(s);
  EXPECT_FALSE(out.suppressed);
  EXPECT_FALSE(out.corrupted);
  EXPECT_EQ(s.estimated_power, Watts{300.0});
}

TEST(FaultInjector, PermanentDropoutSilencesAgent) {
  FaultParams p;
  p.agent_dropout_rate = 1.0;
  p.agent_recovery_rate = 0.0;
  FaultInjector inj(p, common::Rng(2));
  inj.ensure_nodes({0});
  for (int c = 0; c < 5; ++c) {
    NodeSample s = make_sample(0);
    EXPECT_TRUE(inj.apply(s).suppressed);
  }
  EXPECT_EQ(inj.agent_dropouts(), 1u);  // one dropout event, many lost samples
  EXPECT_EQ(inj.samples_suppressed(), 5u);
  EXPECT_TRUE(inj.is_silent(0));
  EXPECT_EQ(inj.silent_count(), 1u);
}

TEST(FaultInjector, CrashWindowRunsItsCourseThenRecovers) {
  FaultParams p;
  p.crash_rate = 1.0;
  p.crash_duration_cycles = 3;
  FaultInjector inj(p, common::Rng(3));
  inj.ensure_nodes({0});

  NodeSample s = make_sample(0);
  auto out = inj.apply(s);  // cycle 1: crash starts
  EXPECT_TRUE(out.crash_started);
  EXPECT_TRUE(out.suppressed);
  EXPECT_TRUE(inj.is_silent(0));

  out = inj.apply(s);  // cycle 2: window counts down
  EXPECT_TRUE(out.suppressed);
  EXPECT_FALSE(out.crash_started);
  out = inj.apply(s);  // cycle 3
  EXPECT_TRUE(out.suppressed);

  out = inj.apply(s);  // cycle 4: window expires, node rejoins
  EXPECT_TRUE(out.recovered);
  EXPECT_FALSE(out.suppressed);
  EXPECT_EQ(inj.crash_events(), 1u);
  EXPECT_EQ(inj.recovery_events(), 1u);
}

TEST(FaultInjector, CorruptionIsAlwaysImplausible) {
  FaultParams p;
  p.corruption_rate = 1.0;
  FaultInjector inj(p, common::Rng(4));
  inj.ensure_nodes({0});
  for (int c = 0; c < 50; ++c) {
    NodeSample s = make_sample(0, 300.0);
    const auto out = inj.apply(s);
    EXPECT_TRUE(out.corrupted);
    EXPECT_FALSE(out.suppressed);
    const double w = s.estimated_power.value();
    // Negative or wildly above any plausible board draw — never a value a
    // sanity check could mistake for a measurement, and never NaN (sums
    // over the candidate set must stay finite).
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_TRUE(w < 0.0 || w > 10'000.0) << w;
  }
  EXPECT_EQ(inj.samples_corrupted(), 50u);
}

TEST(FaultInjector, PerNodeStreamsAreRegistrationOrderIndependent) {
  FaultParams p;
  p.agent_dropout_rate = 0.3;
  p.agent_recovery_rate = 0.3;
  p.corruption_rate = 0.2;
  const std::uint64_t seed = fault_seed(7);
  FaultInjector a(p, common::Rng(seed));
  FaultInjector b(p, common::Rng(seed));
  a.ensure_nodes({0, 1, 2, 3});
  b.ensure_nodes({3, 2});
  b.ensure_nodes({1, 0});

  for (int c = 0; c < 200; ++c) {
    // Apply in different node orders too: outcomes depend only on
    // (seed, node id, per-node cycle index).
    for (const hw::NodeId id : {0u, 1u, 2u, 3u}) {
      NodeSample s = make_sample(id);
      a.apply(s);
    }
    for (const hw::NodeId id : {3u, 1u, 0u, 2u}) {
      NodeSample s = make_sample(id);
      b.apply(s);
    }
  }
  EXPECT_EQ(a.samples_suppressed(), b.samples_suppressed());
  EXPECT_EQ(a.samples_corrupted(), b.samples_corrupted());
  EXPECT_EQ(a.agent_dropouts(), b.agent_dropouts());
  for (const hw::NodeId id : {0u, 1u, 2u, 3u}) {
    EXPECT_EQ(a.is_silent(id), b.is_silent(id)) << "node " << id;
  }
}

TEST(FaultInjector, StatePersistsAcrossCandidateChurn) {
  FaultParams p;
  p.crash_rate = 1.0;
  p.crash_duration_cycles = 10;
  FaultInjector inj(p, common::Rng(8));
  inj.ensure_nodes({0});
  NodeSample s = make_sample(0);
  inj.apply(s);  // crash starts
  EXPECT_TRUE(inj.is_silent(0));
  // The node leaves and re-enters the candidate set mid-window: it is
  // still the same crashed machine.
  inj.ensure_nodes({0, 1});
  EXPECT_TRUE(inj.is_silent(0));
  EXPECT_FALSE(inj.is_silent(1));
}

// -- collector integration ----------------------------------------------

std::vector<hw::Node> make_nodes(std::size_t n) {
  std::vector<hw::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    hw::Node node(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec());
    hw::OperatingPoint op;
    op.cpu_utilization = 0.5;
    op.mem_used = node.spec().mem_total * 0.3;
    op.mem_total = node.spec().mem_total;
    op.tau = Seconds{1.0};
    op.nic_bandwidth = node.spec().nic_bandwidth;
    node.set_operating_point(op);
    node.set_busy(true);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

TEST(CollectorFaults, SuppressedReportsNeverReachHistories) {
  CollectorParams p;
  p.agent.utilization_noise = 0.0;
  p.agent.nic_noise = 0.0;
  p.faults.agent_dropout_rate = 1.0;
  p.faults.agent_recovery_rate = 0.0;
  Collector c(p, common::Rng(11));
  c.set_candidate_set({0, 1});
  auto nodes = make_nodes(2);
  for (int t = 1; t <= 10; ++t) {
    c.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  EXPECT_FALSE(c.latest(0).has_value());
  EXPECT_FALSE(c.latest(1).has_value());
  EXPECT_EQ(c.samples_suppressed(), 20u);
  EXPECT_EQ(c.samples_delivered(), 0u);
  EXPECT_EQ(c.fault_injector().silent_count(), 2u);
}

TEST(CollectorFaults, InFlightReportsStillArriveDuringAnOutage) {
  // dropout=1.0 with recovery=1.0 alternates: suppressed on odd cycles,
  // reporting on even ones. With a one-cycle delay, the cycle-2 report
  // arrives at cycle 3 — while the agent is down again. A report already
  // on the wire was sent before the fault; the outage must not
  // retroactively eat it.
  CollectorParams p;
  p.agent.utilization_noise = 0.0;
  p.agent.nic_noise = 0.0;
  p.transport.delay_cycles = 1;
  p.faults.agent_dropout_rate = 1.0;
  p.faults.agent_recovery_rate = 1.0;
  Collector c(p, common::Rng(12));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  c.collect(nodes, Seconds{1.0}, 1);  // suppressed (dropout)
  c.collect(nodes, Seconds{2.0}, 1);  // recovered, report goes on the wire
  c.collect(nodes, Seconds{3.0}, 1);  // suppressed again; wire delivers
  EXPECT_TRUE(c.fault_injector().is_silent(0));
  const auto s = c.latest(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->time.value(), 2.0);
  EXPECT_EQ(s->cycle, 2u);
  EXPECT_EQ(c.samples_delivered(), 1u);
}

TEST(CollectorFaults, FaultStreamsDoNotPerturbTransportDraws) {
  // Per-node fault processes draw from their own streams: enabling
  // corruption must not change which reports the transport drops.
  CollectorParams clean;
  clean.agent.utilization_noise = 0.0;
  clean.agent.nic_noise = 0.0;
  clean.transport.loss_rate = 0.3;
  CollectorParams noisy = clean;
  noisy.faults.corruption_rate = 1.0;  // corrupts, never suppresses
  const std::uint64_t seed = fault_seed(13);
  Collector reference(clean, common::Rng(seed));
  Collector corrupted(noisy, common::Rng(seed));
  reference.set_candidate_set({0, 1, 2});
  corrupted.set_candidate_set({0, 1, 2});
  auto nodes = make_nodes(3);
  for (int t = 1; t <= 50; ++t) {
    reference.collect(nodes, Seconds{static_cast<double>(t)}, 1);
    corrupted.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  EXPECT_EQ(corrupted.samples_lost(), reference.samples_lost());
  EXPECT_EQ(corrupted.samples_delivered(), reference.samples_delivered());
  EXPECT_GT(corrupted.fault_injector().samples_corrupted(), 0u);
  EXPECT_EQ(corrupted.samples_suppressed(), 0u);
}

}  // namespace
}  // namespace pcap::telemetry
