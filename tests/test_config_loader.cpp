#include "cluster/config_loader.hpp"

#include <gtest/gtest.h>

#include "cluster/scenario.hpp"

namespace pcap::cluster {
namespace {

ExperimentConfig load(const std::string& text) {
  return apply_config(paper_scenario(), common::Config::parse(text));
}

TEST(ConfigLoader, EmptyConfigKeepsDefaults) {
  const ExperimentConfig base = paper_scenario();
  const ExperimentConfig cfg = load("");
  EXPECT_EQ(cfg.cluster.num_nodes, base.cluster.num_nodes);
  EXPECT_EQ(cfg.manager, base.manager);
  EXPECT_EQ(cfg.training.value(), base.training.value());
  EXPECT_EQ(cfg.capping.steady_green_cycles,
            base.capping.steady_green_cycles);
}

TEST(ConfigLoader, ClusterSection) {
  const ExperimentConfig cfg = load(
      "[cluster]\n"
      "nodes = 48\n"
      "seed = 99\n"
      "tick_s = 0.5\n"
      "control_period_s = 2.0\n"
      "npb_class = C\n"
      "max_procs_per_node = 6\n"
      "privileged_fraction = 0.15\n");
  EXPECT_EQ(cfg.cluster.num_nodes, 48u);
  EXPECT_EQ(cfg.cluster.seed, 99u);
  EXPECT_DOUBLE_EQ(cfg.cluster.tick.value(), 0.5);
  EXPECT_DOUBLE_EQ(cfg.cluster.control_period.value(), 2.0);
  EXPECT_EQ(cfg.cluster.npb_class, workload::NpbClass::kC);
  EXPECT_EQ(cfg.cluster.scheduler.max_procs_per_node, 6);
  EXPECT_DOUBLE_EQ(cfg.cluster.privileged_job_fraction, 0.15);
}

TEST(ConfigLoader, ManagerSection) {
  const ExperimentConfig cfg = load(
      "[manager]\n"
      "policy = hri-c\n"
      "candidate_count = 32\n"
      "dynamic_candidates = true\n"
      "tg_cycles = 20\n"
      "red_margin = 0.05\n"
      "yellow_margin = 0.12\n");
  EXPECT_EQ(cfg.manager, "hri-c");
  EXPECT_EQ(cfg.candidate_count, 32);
  EXPECT_TRUE(cfg.dynamic_candidates);
  EXPECT_EQ(cfg.capping.steady_green_cycles, 20);
  EXPECT_DOUBLE_EQ(cfg.red_margin, 0.05);
  EXPECT_DOUBLE_EQ(cfg.yellow_margin, 0.12);
}

TEST(ConfigLoader, ExperimentSection) {
  const ExperimentConfig cfg = load(
      "[experiment]\n"
      "training_h = 1.5\n"
      "measured_h = 3\n"
      "provision_w = 30000\n");
  EXPECT_DOUBLE_EQ(cfg.training.value(), 1.5 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.measured.value(), 3 * 3600.0);
  EXPECT_DOUBLE_EQ(cfg.provision.value(), 30000.0);
}

TEST(ConfigLoader, TelemetrySection) {
  const ExperimentConfig cfg = load(
      "[telemetry]\n"
      "loss_rate = 0.2\n"
      "delay_cycles = 3\n");
  EXPECT_DOUBLE_EQ(cfg.transport.loss_rate, 0.2);
  EXPECT_EQ(cfg.transport.delay_cycles, 3);
}

TEST(ConfigLoader, ActuationSection) {
  const ExperimentConfig cfg = load(
      "[actuation]\n"
      "loss_rate = 0.1\n"
      "delay_cycles = 2\n"
      "failure_rate = 0.02\n"
      "partial_rate = 0.05\n"
      "reboot_rate = 0.001\n"
      "reboot_duration_cycles = 25\n"
      "max_retries = 4\n"
      "retry_backoff_cycles = 3\n"
      "retry_backoff_cap_cycles = 12\n");
  EXPECT_DOUBLE_EQ(cfg.actuation.command_loss_rate, 0.1);
  EXPECT_EQ(cfg.actuation.delivery_delay_cycles, 2);
  EXPECT_DOUBLE_EQ(cfg.actuation.transition_failure_rate, 0.02);
  EXPECT_DOUBLE_EQ(cfg.actuation.partial_transition_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.actuation.reboot_rate, 0.001);
  EXPECT_EQ(cfg.actuation.reboot_duration_cycles, 25);
  EXPECT_EQ(cfg.reconciliation.max_retries, 4);
  EXPECT_EQ(cfg.reconciliation.retry_backoff_base_cycles, 3);
  EXPECT_EQ(cfg.reconciliation.retry_backoff_cap_cycles, 12);
}

// Fault-model knobs are validated at the key level: a stray NaN or
// negative would otherwise sail through into the params structs ([0,1]
// range checks pass NaN through every comparison).
TEST(ConfigLoader, NonFiniteFaultRateThrows) {
  EXPECT_THROW(load("[telemetry]\nloss_rate = nan\n"), std::runtime_error);
  EXPECT_THROW(load("[telemetry]\ncorruption_rate = inf\n"),
               std::runtime_error);
  EXPECT_THROW(load("[actuation]\nloss_rate = nan\n"), std::runtime_error);
  EXPECT_THROW(load("[actuation]\nreboot_rate = 1e999\n"),
               std::runtime_error);
}

TEST(ConfigLoader, NegativeFaultKnobThrows) {
  EXPECT_THROW(load("[telemetry]\nloss_rate = -0.1\n"), std::runtime_error);
  EXPECT_THROW(load("[telemetry]\ndelay_cycles = -1\n"), std::runtime_error);
  EXPECT_THROW(load("[telemetry]\nstale_margin = -0.5\n"),
               std::runtime_error);
  EXPECT_THROW(load("[actuation]\nfailure_rate = -0.1\n"),
               std::runtime_error);
  EXPECT_THROW(load("[actuation]\ndelay_cycles = -2\n"), std::runtime_error);
  EXPECT_THROW(load("[actuation]\nmax_retries = -1\n"), std::runtime_error);
}

TEST(ConfigLoader, OutOfRangeRateStillCaughtByParamsValidate) {
  // checked_double only guards finiteness/sign; the params' own validate()
  // must still reject rates above 1.
  EXPECT_THROW(load("[actuation]\nloss_rate = 1.5\n"), std::invalid_argument);
}

TEST(ConfigLoader, UnknownKeyThrows) {
  EXPECT_THROW(load("[cluster]\nnoodles = 128\n"), std::runtime_error);
  EXPECT_THROW(load("typo = 1\n"), std::runtime_error);
}

TEST(ConfigLoader, BadNpbClassThrows) {
  EXPECT_THROW(load("[cluster]\nnpb_class = E\n"), std::runtime_error);
}

TEST(ConfigLoader, MissingFileThrows) {
  EXPECT_THROW(experiment_from_file("/no/such/file.ini"),
               std::runtime_error);
}

TEST(ConfigLoader, LoadedConfigRunsEndToEnd) {
  ExperimentConfig cfg = load(
      "[cluster]\n"
      "nodes = 12\n"
      "npb_class = C\n"
      "[manager]\n"
      "policy = mpc\n"
      "dynamic_candidates = true\n"
      "[experiment]\n"
      "training_h = 0.25\n"
      "measured_h = 0.5\n"
      "calibration_h = 0.25\n"
      "[telemetry]\n"
      "loss_rate = 0.1\n");
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.manager, "mpc");
  EXPECT_GT(r.p_max, Watts{0.0});
}

TEST(ConfigLoader, ZonesSection) {
  const ExperimentConfig cfg = load(
      "[zones]\n"
      "count = 8\n"
      "assignment = STRIDE\n"
      "redistribution = Proportional\n");
  EXPECT_EQ(cfg.zone_count, 8);
  EXPECT_EQ(cfg.zone_assignment, "stride");
  EXPECT_EQ(cfg.zone_redistribution, "proportional");
}

TEST(ConfigLoader, ZonesValidation) {
  EXPECT_THROW(load("[zones]\ncount = 0\n"), std::runtime_error);
  EXPECT_THROW(load("[zones]\nassignment = diagonal\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[zones]\nredistribution = greedy\n"),
               std::invalid_argument);
}

// zones.count goes through the checked_int guard like every other count:
// garbage and negatives die at the key, not deep inside the tree ctor.
TEST(ConfigLoader, ZoneCountRejectsGarbage) {
  EXPECT_THROW(load("[zones]\ncount = banana\n"), std::runtime_error);
  EXPECT_THROW(load("[zones]\ncount = -4\n"), std::runtime_error);
  EXPECT_THROW(load("[zones]\ncount = nan\n"), std::runtime_error);
}

TEST(ConfigLoader, ControlSection) {
  const ExperimentConfig cfg = load(
      "[control]\n"
      "outage_rate = 0.002\n"
      "outage_duration_cycles = 40\n"
      "zone_outage_rate = 0.003\n"
      "zone_outage_duration_cycles = 30\n"
      "delay_rate = 0.005\n"
      "delay_max_cycles = 3\n");
  EXPECT_DOUBLE_EQ(cfg.control.outage_rate, 0.002);
  EXPECT_EQ(cfg.control.outage_duration_cycles, 40);
  EXPECT_DOUBLE_EQ(cfg.control.zone_outage_rate, 0.003);
  EXPECT_EQ(cfg.control.zone_outage_duration_cycles, 30);
  EXPECT_DOUBLE_EQ(cfg.control.delay_rate, 0.005);
  EXPECT_EQ(cfg.control.delay_max_cycles, 3);
  EXPECT_TRUE(cfg.control.enabled());
}

TEST(ConfigLoader, WatchdogSection) {
  const ExperimentConfig cfg = load(
      "[watchdog]\n"
      "timeout_cycles = 8\n"
      "safe_level = 2\n");
  EXPECT_EQ(cfg.cluster.watchdog.timeout_cycles, 8);
  EXPECT_EQ(cfg.cluster.watchdog.safe_level, 2);
  EXPECT_TRUE(cfg.cluster.watchdog.enabled());
}

TEST(ConfigLoader, ControlAndWatchdogValidation) {
  EXPECT_THROW(load("[control]\noutage_rate = -0.1\n"), std::runtime_error);
  EXPECT_THROW(load("[control]\noutage_rate = nan\n"), std::runtime_error);
  EXPECT_THROW(load("[control]\noutage_rate = 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[control]\noutage_duration_cycles = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(load("[control]\nblackout = 1\n"), std::runtime_error);
  EXPECT_THROW(load("[watchdog]\ntimeout_cycles = -1\n"),
               std::runtime_error);
  EXPECT_THROW(load("[watchdog]\ntimeout_cycles = banana\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace pcap::cluster
