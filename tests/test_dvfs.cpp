#include "hw/dvfs.hpp"

#include <gtest/gtest.h>

namespace pcap::hw {
namespace {

using namespace pcap::literals;

TEST(DvfsLadder, Xeon5670HasTenLevels) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  EXPECT_EQ(l.num_levels(), 10);
  EXPECT_EQ(l.lowest(), 0);
  EXPECT_EQ(l.highest(), 9);
  EXPECT_DOUBLE_EQ(l.frequency(0).gigahertz(), 1.60);
  EXPECT_DOUBLE_EQ(l.frequency(9).gigahertz(), 2.93);
}

TEST(DvfsLadder, FrequenciesAscend) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  for (Level i = 1; i < l.num_levels(); ++i) {
    EXPECT_LT(l.frequency(i - 1), l.frequency(i));
  }
}

TEST(DvfsLadder, VoltagesAscend) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  for (Level i = 1; i < l.num_levels(); ++i) {
    EXPECT_LE(l.voltage(i - 1), l.voltage(i));
  }
  EXPECT_DOUBLE_EQ(l.voltage(0), 0.85);
  EXPECT_DOUBLE_EQ(l.voltage(9), 1.20);
}

TEST(DvfsLadder, RelativeSpeedTopIsOne) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  EXPECT_DOUBLE_EQ(l.relative_speed(l.highest()), 1.0);
  EXPECT_NEAR(l.relative_speed(0), 1.60 / 2.93, 1e-12);
}

TEST(DvfsLadder, PowerScaleTopIsOne) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  EXPECT_DOUBLE_EQ(l.power_scale(l.highest()), 1.0);
}

TEST(DvfsLadder, PowerScaleFallsFasterThanSpeed) {
  // f*V^2 scaling: lowering the clock saves proportionally more power
  // than it costs speed — the whole premise of DVFS capping.
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  for (Level i = 0; i < l.highest(); ++i) {
    EXPECT_LT(l.power_scale(i), l.relative_speed(i));
  }
}

TEST(DvfsLadder, ValidChecksRange) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  EXPECT_TRUE(l.valid(0));
  EXPECT_TRUE(l.valid(9));
  EXPECT_FALSE(l.valid(-1));
  EXPECT_FALSE(l.valid(10));
}

TEST(DvfsLadder, OutOfRangeAccessThrows) {
  const DvfsLadder l = DvfsLadder::xeon_x5670();
  EXPECT_THROW((void)l.frequency(10), std::out_of_range);
  EXPECT_THROW((void)l.voltage(-1), std::out_of_range);
}

TEST(DvfsLadder, EmptyThrows) {
  EXPECT_THROW(DvfsLadder({}, 0.8, 1.0), std::invalid_argument);
}

TEST(DvfsLadder, NonAscendingThrows) {
  EXPECT_THROW(DvfsLadder({2.0_GHz, 1.0_GHz}, 0.8, 1.0),
               std::invalid_argument);
  EXPECT_THROW(DvfsLadder({2.0_GHz, 2.0_GHz}, 0.8, 1.0),
               std::invalid_argument);
}

TEST(DvfsLadder, BadVoltageRangeThrows) {
  EXPECT_THROW(DvfsLadder({1.0_GHz}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DvfsLadder({1.0_GHz}, 1.2, 1.0), std::invalid_argument);
}

TEST(DvfsLadder, SingleLevelLadder) {
  const DvfsLadder l({2.93_GHz}, 1.2, 1.2);
  EXPECT_EQ(l.num_levels(), 1);
  EXPECT_DOUBLE_EQ(l.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(l.power_scale(0), 1.0);
}

TEST(DvfsLadder, CoarseLadderIsValid) {
  const DvfsLadder l = DvfsLadder::coarse_low_power();
  EXPECT_EQ(l.num_levels(), 4);
  EXPECT_GT(l.frequency(3), l.frequency(0));
}

// Property: across every level of both factory ladders, speed and power
// scale are in (0, 1] and monotone in the level.
class LadderMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(LadderMonotonicity, SpeedAndPowerMonotone) {
  const DvfsLadder l = GetParam() == 0 ? DvfsLadder::xeon_x5670()
                                       : DvfsLadder::coarse_low_power();
  double prev_speed = 0.0;
  double prev_power = 0.0;
  for (Level i = 0; i < l.num_levels(); ++i) {
    const double s = l.relative_speed(i);
    const double p = l.power_scale(i);
    EXPECT_GT(s, prev_speed);
    EXPECT_GT(p, prev_power);
    EXPECT_LE(s, 1.0);
    EXPECT_LE(p, 1.0);
    prev_speed = s;
    prev_power = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Ladders, LadderMonotonicity, ::testing::Values(0, 1));

}  // namespace
}  // namespace pcap::hw
