// Predictive capping (ROADMAP "Predictive capping"): the PowerPredictor
// models (Holt EWMA trend, windowed periodicity), the forecast accuracy
// scorer, the forecast-driven policies (PI-C, PRED-C), the engine's
// predictive elevation of green cycles, manager/tree integration with
// warm restart, and whole-cluster determinism of the predictive stack
// under a degraded management plane.
#include "power/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/capping.hpp"
#include "power/checkpoint.hpp"
#include "power/manager.hpp"
#include "power/policies_predictive.hpp"
#include "power/policies_state_based.hpp"
#include "power/policy_registry.hpp"
#include "power/zone_manager.hpp"
#include "workload/npb.hpp"

namespace pcap::power {
namespace {

/// CI sweeps PCAP_FAULT_SEED across a seed range; locally the fallback
/// keeps the test deterministic.
std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PCAP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// Same three-job context as test_policies.cpp:
///   job 0: nodes {0,1},   P = 600 (hot)
///   job 1: nodes {2},     P = 200 (cool)
///   job 2: nodes {3,4,5}, P = 450 (mid)
/// Saving per node is 20 W; P - P_L = `gap` (negative gap = green meter).
PolicyContext three_job_ctx(double gap) {
  PolicyContext ctx;
  ctx.p_low = Watts{1000.0};
  ctx.system_power = Watts{1000.0 + gap};
  const double node_power[] = {300.0, 300.0, 200.0, 150.0, 150.0, 150.0};
  for (int i = 0; i < 6; ++i) {
    NodeView nv;
    nv.id = static_cast<hw::NodeId>(i);
    nv.level = 9;
    nv.highest_level = 9;
    nv.busy = true;
    nv.power = Watts{node_power[i]};
    nv.power_one_level_down = nv.power - Watts{20.0};
    ctx.nodes.push_back(nv);
  }
  ctx.index_nodes();
  const std::vector<std::vector<hw::NodeId>> groups = {{0, 1}, {2}, {3, 4, 5}};
  for (std::size_t j = 0; j < groups.size(); ++j) {
    JobView jv;
    jv.id = j;
    jv.nodes = groups[j];
    for (const hw::NodeId id : groups[j]) {
      jv.power += ctx.node(id)->power;
      jv.saving_one_level += Watts{20.0};
    }
    ctx.jobs.push_back(jv);
  }
  return ctx;
}

// -- PredictionParams / make_predictor -----------------------------------

TEST(PredictionParams, DefaultsValidateEvenWhileDisabled) {
  PredictionParams p;
  EXPECT_FALSE(p.enabled);
  EXPECT_NO_THROW(p.validate());
}

TEST(PredictionParams, ValidationRejectsNonsense) {
  PredictionParams p;
  p.kind = "oracle";
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PredictionParams{};
  p.horizon_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PredictionParams{};
  p.ewma_alpha = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PredictionParams{};
  p.ewma_beta = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PredictionParams{};
  p.window_cycles = 4;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PredictionParams{};
  p.refresh_cycles = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PredictionParams, MakePredictorDispatchesOnKind) {
  PredictionParams p;
  EXPECT_EQ(make_predictor(p)->name(), "ewma");
  p.kind = "fft";
  EXPECT_EQ(make_predictor(p)->name(), "fft");
  p.kind = "tea-leaves";
  EXPECT_THROW(make_predictor(p), std::invalid_argument);
}

// -- EwmaTrendPredictor --------------------------------------------------

TEST(EwmaTrendPredictor, NoForecastUntilTwoSamples) {
  EwmaTrendPredictor p(0.25, 0.08);
  EXPECT_FALSE(p.forecast(1).has_value());
  p.observe(Watts{100.0});
  EXPECT_FALSE(p.forecast(1).has_value());
  p.observe(Watts{110.0});
  EXPECT_TRUE(p.forecast(1).has_value());
}

TEST(EwmaTrendPredictor, HoltInitExtrapolatesALinearRampExactly) {
  // After two samples the Holt state is level = x1, trend = x1 - x0, so
  // forecast(h) = x1 + h * (x1 - x0) with no smoothing lag.
  EwmaTrendPredictor p(0.25, 0.08);
  p.observe(Watts{100.0});
  p.observe(Watts{110.0});
  EXPECT_DOUBLE_EQ(p.forecast(1)->value(), 120.0);
  EXPECT_DOUBLE_EQ(p.forecast(5)->value(), 160.0);
}

TEST(EwmaTrendPredictor, TracksAPerfectRampAtAnySmoothing) {
  // x_t = 1000 + 40 t is reproduced exactly by level = x_t, trend = 40:
  // the update is a fixed point on noiseless ramps.
  EwmaTrendPredictor p(0.25, 0.08);
  for (int t = 0; t < 50; ++t) p.observe(Watts{1000.0 + 40.0 * t});
  EXPECT_NEAR(p.forecast(3)->value(), 1000.0 + 40.0 * 52, 1e-6);
}

TEST(EwmaTrendPredictor, ForecastIsClampedAtZero) {
  EwmaTrendPredictor p(0.25, 0.08);
  p.observe(Watts{100.0});
  p.observe(Watts{0.0});  // trend -100: a long horizon would go negative
  EXPECT_DOUBLE_EQ(p.forecast(5)->value(), 0.0);
}

TEST(EwmaTrendPredictor, CheckpointRoundTripContinuesBitIdentically) {
  EwmaTrendPredictor a(0.25, 0.08);
  for (int t = 0; t < 37; ++t) {
    a.observe(Watts{1200.0 + 90.0 * std::sin(0.37 * t)});
  }
  EwmaTrendPredictor b(0.25, 0.08);
  b.restore_state(a.checkpoint_state());
  for (int t = 37; t < 60; ++t) {
    const Watts x{1200.0 + 90.0 * std::sin(0.37 * t)};
    a.observe(x);
    b.observe(x);
    EXPECT_EQ(a.forecast(5)->value(), b.forecast(5)->value()) << "t=" << t;
  }
}

TEST(EwmaTrendPredictor, RestoreRejectsForeignState) {
  EwmaTrendPredictor p(0.25, 0.08);
  EXPECT_THROW(p.restore_state({}), std::invalid_argument);
  EXPECT_THROW(p.restore_state({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(p.restore_state({1.0, 2.0, -1.0}), std::invalid_argument);
}

// -- PeriodicityPredictor ------------------------------------------------

TEST(PeriodicityPredictor, FallsBackToHoltUntilTheWindowFills) {
  PeriodicityPredictor p(16, 0.25, 0.08);
  EwmaTrendPredictor holt(0.25, 0.08);
  EXPECT_FALSE(p.model_valid());
  p.refresh();  // cheap no-op before the first fill
  EXPECT_FALSE(p.model_valid());
  for (int t = 0; t < 10; ++t) {
    const Watts x{500.0 + 13.0 * t};
    p.observe(x);
    holt.observe(x);
  }
  ASSERT_TRUE(p.forecast(4).has_value());
  EXPECT_EQ(p.forecast(4)->value(), holt.forecast(4)->value());
}

TEST(PeriodicityPredictor, LocksOntoAPeriodicLoad) {
  // Period 16 divides the window (32), so the dominant DFT bin lands on
  // the true frequency. The fit is not bit-exact — the least-squares
  // trend line absorbs a sliver of the harmonic (sum of i*cos(2*pi*k*i/n)
  // is -n/2, not 0) — but it must track the oscillation through a full
  // future cycle, which a trend-only model is structurally blind to.
  const auto signal = [](std::int64_t t) {
    return 1000.0 + 100.0 * std::cos(2.0 * 3.14159265358979323846 *
                                     static_cast<double>(t) / 16.0);
  };
  PeriodicityPredictor p(32, 0.25, 0.08);
  for (std::int64_t t = 0; t < 64; ++t) p.observe(Watts{signal(t)});
  p.refresh();
  ASSERT_TRUE(p.model_valid());
  for (std::int64_t h = 1; h <= 16; ++h) {
    EXPECT_NEAR(p.forecast(h)->value(), signal(63 + h), 20.0) << "h=" << h;
  }
  // Phase check: half a period ahead the signal bottoms out, a full
  // period ahead it is back near the crest — the forecast must swing.
  EXPECT_GT(p.forecast(16)->value() - p.forecast(8)->value(), 150.0);
}

TEST(PeriodicityPredictor, CheckpointRoundTripContinuesBitIdentically) {
  const auto signal = [](std::int64_t t) {
    return 900.0 + 2.0 * static_cast<double>(t) +
           60.0 * std::sin(0.5 * static_cast<double>(t));
  };
  PeriodicityPredictor a(16, 0.25, 0.08);
  for (std::int64_t t = 0; t < 40; ++t) a.observe(Watts{signal(t)});
  a.refresh();
  ASSERT_TRUE(a.model_valid());

  PeriodicityPredictor b(16, 0.25, 0.08);
  b.restore_state(a.checkpoint_state());
  EXPECT_TRUE(b.model_valid());
  for (std::int64_t t = 40; t < 70; ++t) {
    a.observe(Watts{signal(t)});
    b.observe(Watts{signal(t)});
    if (t == 55) {  // same refresh cadence on both sides
      a.refresh();
      b.refresh();
    }
    EXPECT_EQ(a.forecast(7)->value(), b.forecast(7)->value()) << "t=" << t;
  }
}

TEST(PeriodicityPredictor, RestoreRejectsForeignState) {
  PeriodicityPredictor a(16, 0.25, 0.08);
  for (int t = 0; t < 20; ++t) a.observe(Watts{100.0 + t});
  PeriodicityPredictor wrong_window(32, 0.25, 0.08);
  EXPECT_THROW(wrong_window.restore_state(a.checkpoint_state()),
               std::invalid_argument);
  PeriodicityPredictor b(16, 0.25, 0.08);
  auto s = a.checkpoint_state();
  s.pop_back();
  EXPECT_THROW(b.restore_state(s), std::invalid_argument);
}

// -- ForecastScorer ------------------------------------------------------

TEST(ForecastScorer, ScoresTheForecastThatTargetedThisCycle) {
  ForecastScorer s;
  s.reset(2);
  // Cycle 0: forecast 120 for cycle 2. Pipeline not full — nothing scored.
  EXPECT_FALSE(s.step(50.0, 100.0, 120.0).has_value());
  // Cycle 1: forecast 80 for cycle 3.
  EXPECT_FALSE(s.step(60.0, 100.0, 80.0).has_value());
  // Cycle 2: realised 90 vs the 120 predicted two cycles ago — a false
  // alarm (predicted >= P_L, realised < P_L).
  const auto a = s.step(90.0, 100.0, std::nullopt);
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->abs_error, 30.0);
  EXPECT_TRUE(a->overshoot);
  EXPECT_FALSE(a->miss);
  // Cycle 3: realised 110 vs the 80 predicted — an unseen ramp.
  const auto b = s.step(110.0, 100.0, 50.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->miss);
  EXPECT_FALSE(b->overshoot);
  // Cycle 4: the slot written at cycle 2 held no forecast — not scored.
  EXPECT_FALSE(s.step(70.0, 100.0, 50.0).has_value());
  EXPECT_EQ(s.overshoots(), 1u);
  EXPECT_EQ(s.misses(), 1u);
  EXPECT_EQ(s.scored(), 2u);
}

// -- PI-C / PRED-C policies ----------------------------------------------

TEST(PiTuning, ValidationRejectsNonsense) {
  EXPECT_NO_THROW(PiTuning{}.validate());
  PiTuning t;
  t.kp = -1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = PiTuning{};
  t.kp = 0.0;
  t.ki = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = PiTuning{};
  t.integral_cap = -0.5;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(PiC, ActsOnTheForecastNotTheMeter) {
  PiCollection p;
  // Meter green (950 < 1000), no forecast: negative error, zero demand.
  auto ctx = three_job_ctx(-50.0);
  EXPECT_TRUE(p.select(ctx).empty());
  // Same meter, but a forecast of 1100: error 0.1, integral 0.1, demand
  // 1000 * (1.0*0.1 + 0.05*0.1) = 105 W -> jobs by descending power:
  // 600 (saves 40) + 450 (saves 60) + 200 (saves 20) = 120 >= 105.
  ctx.has_forecast = true;
  ctx.forecast_power = Watts{1100.0};
  EXPECT_EQ(p.select(ctx), (std::vector<hw::NodeId>{0, 1, 3, 4, 5, 2}));
}

TEST(PiC, IntegralChargesToTheCapAndDischargesOnHeadroom) {
  PiCollection p;  // default cap 0.5
  auto hot = three_job_ctx(-50.0);
  hot.has_forecast = true;
  hot.forecast_power = Watts{1200.0};  // error +0.2 per cycle
  (void)p.select(hot);
  EXPECT_DOUBLE_EQ(p.integral(), 0.2);
  (void)p.select(hot);
  (void)p.select(hot);
  EXPECT_DOUBLE_EQ(p.integral(), 0.5);  // anti-windup clamp
  (void)p.select(hot);
  EXPECT_DOUBLE_EQ(p.integral(), 0.5);

  auto cool = three_job_ctx(-50.0);
  cool.has_forecast = true;
  cool.forecast_power = Watts{700.0};  // error -0.3: discharge
  (void)p.select(cool);
  EXPECT_DOUBLE_EQ(p.integral(), 0.2);
  (void)p.select(cool);
  EXPECT_DOUBLE_EQ(p.integral(), 0.0);  // floors at zero, never owes
}

TEST(PiC, ZoneShareModeHonoursTheShareWithoutTouchingPiState) {
  PiCollection p;
  // Charge the integral first so an accidental update would be visible.
  auto hot = three_job_ctx(-50.0);
  hot.has_forecast = true;
  hot.forecast_power = Watts{1200.0};
  (void)p.select(hot);
  ASSERT_DOUBLE_EQ(p.integral(), 0.2);

  // Zone-shard synthetic context: p_low == 0, system_power == share.
  auto share = three_job_ctx(0.0);
  share.p_low = Watts{0.0};
  share.system_power = Watts{30.0};
  EXPECT_EQ(p.select(share), (std::vector<hw::NodeId>{0, 1}));  // 40 >= 30
  EXPECT_DOUBLE_EQ(p.integral(), 0.2);  // untouched
}

TEST(PiC, CheckpointRoundTripsTheIntegral) {
  PiCollection a;
  auto hot = three_job_ctx(-50.0);
  hot.has_forecast = true;
  hot.forecast_power = Watts{1200.0};
  (void)a.select(hot);
  const auto state = a.checkpoint_state();
  ASSERT_EQ(state.size(), 1u);
  PiCollection b;
  b.restore_state(state);
  EXPECT_EQ(b.integral(), a.integral());
  EXPECT_THROW(b.restore_state({1.0, 2.0}), std::invalid_argument);
}

TEST(PredC, CoversTheForecastGapAndDegradesGracefully) {
  PredictiveCollection p;
  auto ctx = three_job_ctx(-50.0);
  // No forecast, meter green: demand 950 - 1000 < 0 -> nothing selected
  // (the reactive fallback only acts when the meter itself is over).
  EXPECT_TRUE(p.select(ctx).empty());
  // Forecast 1100: demand 100 W -> 600-W job (40) + 450-W job (60) = 100.
  ctx.has_forecast = true;
  ctx.forecast_power = Watts{1100.0};
  EXPECT_EQ(p.select(ctx), (std::vector<hw::NodeId>{0, 1, 3, 4, 5}));
}

TEST(Registry, PredictivePoliciesAreForecastDrivenOthersAreNot) {
  EXPECT_TRUE(make_policy("pi-c")->forecast_driven());
  EXPECT_TRUE(make_policy("pred-c")->forecast_driven());
  EXPECT_FALSE(make_policy("mpc-c")->forecast_driven());
  EXPECT_FALSE(make_policy("hri-c")->forecast_driven());
}

TEST(Registry, PiTuningFlowsThroughMakePolicy) {
  PiTuning t;
  t.kp = 0.0;
  t.ki = 0.0;
  EXPECT_THROW(make_policy("pi-c", t), std::invalid_argument);
  // Non-predictive policies ignore the tuning entirely.
  EXPECT_NO_THROW(make_policy("mpc-c", t));
}

// -- engine: predictive elevation ----------------------------------------

TEST(CappingEngine, ElevatesGreenToYellowWhenTheForecastCrossesPLow) {
  CappingEngine e(CappingParams{});
  PiCollection pi;
  auto ctx = three_job_ctx(-100.0);  // meter 900: solidly green
  ctx.has_forecast = true;
  ctx.forecast_power = Watts{1050.0};
  const CycleDecision d =
      e.cycle(ctx.system_power, ctx.p_low, Watts{1200.0}, pi, ctx);
  EXPECT_EQ(d.state, PowerState::kYellow);
  EXPECT_EQ(e.predictive_elevations(), 1u);
  // error 0.05 -> demand 1000*(0.05 + 0.05*0.05) = 52.5 W -> the 600-W
  // job (40) plus the 450-W job (60): five nodes throttled before the
  // meter ever crossed the threshold.
  EXPECT_EQ(d.commands.size(), 5u);
}

TEST(CappingEngine, ReactivePoliciesAreNeverElevated) {
  CappingEngine e(CappingParams{});
  MostPowerConsumingCollection mpc_c;
  auto ctx = three_job_ctx(-100.0);
  ctx.has_forecast = true;
  ctx.forecast_power = Watts{1050.0};
  const CycleDecision d =
      e.cycle(ctx.system_power, ctx.p_low, Watts{1200.0}, mpc_c, ctx);
  EXPECT_EQ(d.state, PowerState::kGreen);
  EXPECT_EQ(e.predictive_elevations(), 0u);
  EXPECT_TRUE(d.commands.empty());
}

TEST(CappingEngine, ElevationRequiresAForecastAndNeverReachesRed) {
  CappingEngine e(CappingParams{});
  PiCollection pi;
  auto ctx = three_job_ctx(-100.0);
  // No forecast: plain green cycle.
  CycleDecision d = e.cycle(ctx.system_power, ctx.p_low, Watts{1200.0}, pi, ctx);
  EXPECT_EQ(d.state, PowerState::kGreen);
  // A catastrophic forecast still only reaches the yellow path — red
  // stays strictly meter-driven so a bad model cannot floor the cluster.
  ctx.has_forecast = true;
  ctx.forecast_power = Watts{5000.0};
  d = e.cycle(ctx.system_power, ctx.p_low, Watts{1200.0}, pi, ctx);
  EXPECT_EQ(d.state, PowerState::kYellow);
  EXPECT_EQ(e.predictive_elevations(), 1u);
}

// -- manager integration -------------------------------------------------

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void load(double utilization) {
    for (auto& n : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = utilization;
      op.mem_used = n.spec().mem_total * 0.4;
      op.mem_total = n.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = n.spec().nic_bandwidth;
      n.set_operating_point(op);
      n.set_busy(true);
    }
  }

  void run_job(workload::JobId id, int nprocs) {
    scheduler.submit(workload::Job(
        id, workload::npb_by_name("lu", workload::NpbClass::kC), nprocs,
        Seconds{0.0}));
    scheduler.try_launch(Seconds{0.0});
  }
};

/// Frozen thresholds (P_L = 1680, P_H = 1860), noise-free telemetry, and
/// an EWMA predictor at horizon 5.
CappingManagerParams predictive_params() {
  CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  p.capping.steady_green_cycles = 3;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  p.green_collect_stride = 1;
  p.prediction.enabled = true;
  p.prediction.kind = "ewma";
  p.prediction.horizon_cycles = 5;
  return p;
}

TEST(CappingManager, ActsBeforeTheMeterCrossesTheThreshold) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManager m(predictive_params(), make_policy("pi-c"), common::Rng(5));
  m.set_candidate_set({0, 1, 2, 3});

  // One sample: the model has no trend yet, the cycle is plain green.
  auto r = m.cycle(Watts{1500.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_FALSE(r.has_forecast);
  EXPECT_EQ(r.state, PowerState::kGreen);

  // Ramp at +60 W/cycle: after the second sample Holt holds level 1560,
  // trend 60, so the horizon-5 forecast is 1860 >= P_L = 1680 — the
  // manager runs the yellow path while the meter still reads green.
  r = m.cycle(Watts{1560.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  ASSERT_TRUE(r.has_forecast);
  EXPECT_DOUBLE_EQ(r.forecast.value(), 1860.0);
  EXPECT_EQ(r.state, PowerState::kYellow);
  EXPECT_EQ(r.predictive_elevations, 1u);
  EXPECT_GT(r.targets, 0u);
  EXPECT_EQ(m.current_forecast()->value(), 1860.0);
  ASSERT_NE(m.predictor(), nullptr);
}

TEST(CappingManager, PredictionDisabledIsByteForByteReactive) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManagerParams p = predictive_params();
  p.prediction = PredictionParams{};
  CappingManager m(p, make_policy("pi-c"), common::Rng(5));
  m.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 4; ++i) {
    const auto r = m.cycle(Watts{1500.0 + 50.0 * i}, rig.nodes,
                           rig.scheduler, Seconds{1.0 + i});
    EXPECT_FALSE(r.has_forecast);
    EXPECT_EQ(r.predictive_elevations, 0u);
    // 1500..1650 all under P_L = 1680: a reactive PI-C stays green.
    EXPECT_EQ(r.state, PowerState::kGreen);
  }
  EXPECT_EQ(m.predictor(), nullptr);
  EXPECT_FALSE(m.current_forecast().has_value());
}

TEST(CappingManager, ScorerReportsAccuracyOncePipelineFills) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManagerParams p = predictive_params();
  p.prediction.horizon_cycles = 2;
  CappingManager m(p, make_policy("pred-c"), common::Rng(5));
  m.set_candidate_set({0, 1, 2, 3});
  ManagerReport r;
  for (int i = 0; i < 6; ++i) {
    r = m.cycle(Watts{1000.0}, rig.nodes, rig.scheduler, Seconds{1.0 + i});
  }
  // Constant input: forecasts are exact, no overshoots and no misses.
  EXPECT_TRUE(r.forecast_scored);
  EXPECT_DOUBLE_EQ(r.forecast_abs_error, 0.0);
  EXPECT_EQ(r.predictor_overshoots, 0u);
  EXPECT_EQ(r.predictor_misses, 0u);
  EXPECT_GT(m.forecast_scorer().scored(), 0u);
}

TEST(Checkpoint, PredictorWarmRestartResumesBitIdentically) {
  // Twin rigs: A runs 6 cycles of a ramp and checkpoints; C runs the full
  // 12 uninterrupted. B = fresh manager + restore must replay C's cycles
  // 7..12 exactly — same forecasts to the last bit, same decisions.
  Rig rig_a(4);
  rig_a.load(0.9);
  rig_a.run_job(1, 48);
  Rig rig_c(4);
  rig_c.load(0.9);
  rig_c.run_job(1, 48);
  const auto meter = [](int i) { return Watts{1400.0 + 25.0 * i}; };

  CappingManager a(predictive_params(), make_policy("pi-c"), common::Rng(5));
  a.set_candidate_set({0, 1, 2, 3});
  CappingManager c(predictive_params(), make_policy("pi-c"), common::Rng(5));
  c.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 6; ++i) {
    a.cycle(meter(i), rig_a.nodes, rig_a.scheduler, Seconds{1.0 + i});
    c.cycle(meter(i), rig_c.nodes, rig_c.scheduler, Seconds{1.0 + i});
  }
  const std::string image = encode_checkpoint(a.checkpoint());

  CappingManager b(predictive_params(), make_policy("pi-c"), common::Rng(5));
  b.set_candidate_set({0, 1, 2, 3});
  b.restore(decode_shard_checkpoint(image));
  ASSERT_TRUE(b.current_forecast().has_value());
  EXPECT_EQ(b.current_forecast()->value(), a.current_forecast()->value());

  for (int i = 6; i < 12; ++i) {
    const auto rb =
        b.cycle(meter(i), rig_a.nodes, rig_a.scheduler, Seconds{1.0 + i});
    const auto rc =
        c.cycle(meter(i), rig_c.nodes, rig_c.scheduler, Seconds{1.0 + i});
    EXPECT_EQ(rb.has_forecast, rc.has_forecast) << "cycle " << i;
    EXPECT_EQ(rb.forecast.value(), rc.forecast.value()) << "cycle " << i;
    EXPECT_EQ(rb.state, rc.state) << "cycle " << i;
    EXPECT_EQ(rb.targets, rc.targets) << "cycle " << i;
    EXPECT_EQ(rb.predictive_elevations, rc.predictive_elevations)
        << "cycle " << i;
  }
}

TEST(Checkpoint, FftPredictorAndPiIntegralSurviveTheImage) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  CappingManagerParams p = predictive_params();
  p.prediction.kind = "fft";
  p.prediction.window_cycles = 8;
  p.prediction.refresh_cycles = 4;
  CappingManager a(p, make_policy("pi-c"), common::Rng(5));
  a.set_candidate_set({0, 1, 2, 3});
  for (int i = 0; i < 10; ++i) {
    a.cycle(Watts{1600.0 + 60.0 * (i % 3)}, rig.nodes, rig.scheduler,
            Seconds{1.0 + i});
  }
  const ShardCheckpoint cp = a.checkpoint();
  EXPECT_FALSE(cp.predictor_state.empty());
  const std::string text = encode_checkpoint(cp);
  EXPECT_EQ(encode_checkpoint(decode_shard_checkpoint(text)), text);

  CappingManager b(p, make_policy("pi-c"), common::Rng(5));
  b.set_candidate_set({0, 1, 2, 3});
  b.restore(decode_shard_checkpoint(text));
  const auto* pi_a = dynamic_cast<const PiCollection*>(&a.policy());
  const auto* pi_b = dynamic_cast<const PiCollection*>(&b.policy());
  ASSERT_NE(pi_a, nullptr);
  ASSERT_NE(pi_b, nullptr);
  EXPECT_EQ(pi_b->integral(), pi_a->integral());
  ASSERT_TRUE(b.current_forecast().has_value());
  EXPECT_EQ(b.current_forecast()->value(), a.current_forecast()->value());
}

// -- zone tree integration -----------------------------------------------

TEST(ZoneTree, RootForecastElevatesTheTreeAndCheckpoints) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  ZoneTreeParams zp;
  zp.zone_count = 2;
  ZoneTreeManager m(
      zp, predictive_params(), [] { return make_policy("pi-c"); },
      common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});

  auto r = m.cycle(Watts{1500.0}, rig.nodes, rig.scheduler, Seconds{1.0});
  EXPECT_EQ(r.state, PowerState::kGreen);
  r = m.cycle(Watts{1560.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  ASSERT_TRUE(r.has_forecast);
  EXPECT_DOUBLE_EQ(r.forecast.value(), 1860.0);  // >= P_L = 1680
  EXPECT_EQ(r.state, PowerState::kYellow);
  EXPECT_GE(m.predictive_elevations(), 1u);
  EXPECT_GE(r.predictive_elevations, 1u);

  const TreeCheckpoint cp = m.checkpoint();
  EXPECT_FALSE(cp.predictor_state.empty());
  const std::string text = encode_checkpoint(cp);
  EXPECT_EQ(encode_checkpoint(decode_tree_checkpoint(text)), text);

  ZoneTreeManager fresh(
      zp, predictive_params(), [] { return make_policy("pi-c"); },
      common::Rng(1));
  fresh.set_candidate_set({0, 1, 2, 3});
  fresh.restore(decode_tree_checkpoint(text));
  ASSERT_TRUE(fresh.current_forecast().has_value());
  EXPECT_EQ(fresh.current_forecast()->value(), m.current_forecast()->value());
}

// -- whole-cluster determinism of the predictive stack -------------------

/// Span histograms record wall-clock time and are non-deterministic by
/// design; everything else in the export must be bit-identical.
std::string strip_spans(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    if (line.find("phase_seconds") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    pos = eol + 1;
  }
  return out;
}

struct PredictiveRun {
  std::vector<metrics::CyclePoint> points;
  std::string prom;
  std::uint64_t samples_lost = 0;
};

/// A degraded-plane cluster run under a predictive policy: lossy delayed
/// transport, agent dropout and corruption, forecasts live — the whole
/// stack must stay bit-identical across worker-thread counts and across
/// incremental/rebuild context modes.
PredictiveRun run_predictive_cluster(std::size_t worker_threads,
                                     const std::string& policy,
                                     bool incremental) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 100;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = fault_seed(20260808);
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cluster::Cluster cl(cfg);

  CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.75;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  p.collector.transport.loss_rate = 0.05;
  p.collector.transport.delay_cycles = 2;
  p.collector.faults.agent_dropout_rate = 0.02;
  p.collector.faults.agent_recovery_rate = 0.25;
  p.collector.faults.corruption_rate = 0.01;
  p.max_sample_age_cycles = 3;
  p.incremental_context = incremental;
  p.prediction.enabled = true;
  p.prediction.kind = "ewma";
  p.prediction.horizon_cycles = 5;
  auto mgr = std::make_unique<CappingManager>(
      p, make_policy(policy), common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{300.0});

  PredictiveRun out;
  out.points = cl.recorder().points();
  out.prom = strip_spans(cl.metrics().prometheus_text());
  out.samples_lost = cl.last_report().samples_lost;
  return out;
}

void expect_identical(const PredictiveRun& a, const PredictiveRun& b,
                      bool compare_prom) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
    EXPECT_EQ(pa.stale_nodes, pb.stale_nodes) << "tick " << i;
    EXPECT_EQ(pa.skipped_targets, pb.skipped_targets) << "tick " << i;
  }
  EXPECT_EQ(a.samples_lost, b.samples_lost);
  // The Prometheus export is the cross-cutting check: every counter and
  // gauge — including the pcap_predictor_* series — in one diff.
  // Incremental/rebuild runs legitimately differ in the context-build
  // statistics, so only thread-count comparisons include it.
  if (compare_prom) EXPECT_EQ(a.prom, b.prom);
}

TEST(PredictiveDeterminism, PiCDegradedRunIsThreadInvariant) {
  const PredictiveRun serial = run_predictive_cluster(1, "pi-c", true);
  ASSERT_GT(serial.points.size(), 250u);
  EXPECT_GT(serial.samples_lost, 0u);  // the fault machinery really fired
  EXPECT_NE(serial.prom.find("pcap_predictor_forecast_watts"),
            std::string::npos);
  const PredictiveRun four = run_predictive_cluster(4, "pi-c", true);
  expect_identical(serial, four, /*compare_prom=*/true);
}

TEST(PredictiveDeterminism, PredCDegradedRunIsThreadInvariant) {
  const PredictiveRun serial = run_predictive_cluster(1, "pred-c", true);
  const PredictiveRun four = run_predictive_cluster(4, "pred-c", true);
  expect_identical(serial, four, /*compare_prom=*/true);
}

TEST(PredictiveDeterminism, IncrementalAndRebuildContextsAgree) {
  const PredictiveRun inc = run_predictive_cluster(1, "pi-c", true);
  const PredictiveRun rebuild = run_predictive_cluster(1, "pi-c", false);
  expect_identical(inc, rebuild, /*compare_prom=*/false);
}

}  // namespace
}  // namespace pcap::power
