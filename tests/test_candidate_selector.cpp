#include "power/candidate_selector.hpp"

#include <gtest/gtest.h>

#include "hw/node_spec.hpp"
#include "workload/job_generator.hpp"
#include "workload/npb.hpp"

namespace pcap::power {
namespace {

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void run_job(workload::JobId id, int nprocs,
               workload::JobPriority prio = workload::JobPriority::kNormal) {
    scheduler.submit(workload::Job(
        id, workload::npb_by_name("ep", workload::NpbClass::kC), nprocs,
        Seconds{0.0}, prio));
    scheduler.try_launch(Seconds{0.0});
  }
};

TEST(CandidateSelector, AllControllableByDefault) {
  Rig rig(6);
  CandidateSelector sel(CandidateSelectorParams{});
  const auto ids = sel.select(rig.nodes, rig.scheduler);
  EXPECT_EQ(ids.size(), 6u);
}

TEST(CandidateSelector, SkipsUncontrollableNodes) {
  Rig rig(4);
  rig.nodes[1] = hw::Node(1, hw::uncontrollable_node_spec());
  rig.nodes[3] = hw::Node(3, hw::uncontrollable_node_spec());
  CandidateSelector sel(CandidateSelectorParams{});
  EXPECT_EQ(sel.select(rig.nodes, rig.scheduler),
            (std::vector<hw::NodeId>{0, 2}));
}

TEST(CandidateSelector, ExcludesPrivilegedJobNodes) {
  Rig rig(6);
  rig.run_job(1, 24, workload::JobPriority::kPrivileged);  // nodes 0, 1
  rig.run_job(2, 24);                                      // nodes 2, 3
  CandidateSelector sel(CandidateSelectorParams{});
  EXPECT_EQ(sel.select(rig.nodes, rig.scheduler),
            (std::vector<hw::NodeId>{2, 3, 4, 5}));
}

TEST(CandidateSelector, PrivilegedExclusionCanBeDisabled) {
  Rig rig(4);
  rig.run_job(1, 24, workload::JobPriority::kPrivileged);
  CandidateSelectorParams p;
  p.exclude_privileged = false;
  CandidateSelector sel(p);
  EXPECT_EQ(sel.select(rig.nodes, rig.scheduler).size(), 4u);
}

TEST(CandidateSelector, NodesReturnAfterPrivilegedJobFinishes) {
  Rig rig(4);
  rig.run_job(1, 24, workload::JobPriority::kPrivileged);
  CandidateSelector sel(CandidateSelectorParams{});
  EXPECT_EQ(sel.select(rig.nodes, rig.scheduler).size(), 2u);

  workload::Job* job = rig.scheduler.find(1);
  double t = 0.0;
  while (job->state() == workload::JobState::kRunning) {
    t += 600.0;
    job->advance(Seconds{600.0}, 1.0, Seconds{t});
  }
  rig.scheduler.on_job_finished(1);
  EXPECT_EQ(sel.select(rig.nodes, rig.scheduler).size(), 4u);
}

TEST(CandidateSelector, MaxCandidatesTruncatesLowestIdsFirst) {
  Rig rig(8);
  CandidateSelectorParams p;
  p.max_candidates = 3;
  CandidateSelector sel(p);
  EXPECT_EQ(sel.select(rig.nodes, rig.scheduler),
            (std::vector<hw::NodeId>{0, 1, 2}));
}

TEST(CandidateSelector, DueFiresImmediatelyThenPeriodically) {
  CandidateSelectorParams p;
  p.reselect_period_cycles = 3;
  CandidateSelector sel(p);
  EXPECT_TRUE(sel.due());   // first call always selects
  EXPECT_FALSE(sel.due());  // 1
  EXPECT_FALSE(sel.due());  // 2
  EXPECT_TRUE(sel.due());   // 3 -> due
  EXPECT_FALSE(sel.due());
}

TEST(CandidateSelector, BadPeriodThrows) {
  CandidateSelectorParams p;
  p.reselect_period_cycles = 0;
  EXPECT_THROW(CandidateSelector{p}, std::invalid_argument);
}

TEST(JobPriority, Names) {
  EXPECT_STREQ(workload::job_priority_name(workload::JobPriority::kNormal),
               "normal");
  EXPECT_STREQ(
      workload::job_priority_name(workload::JobPriority::kPrivileged),
      "privileged");
}

TEST(JobPriority, GeneratorHonoursFraction) {
  auto gen = workload::JobGenerator::paper_default(
      common::Rng(5), 0, workload::NpbClass::kC, 0.3);
  int privileged = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.draw().priority == workload::JobPriority::kPrivileged) {
      ++privileged;
    }
  }
  EXPECT_NEAR(static_cast<double>(privileged) / n, 0.3, 0.02);
}

TEST(JobPriority, ZeroFractionNeverPrivileged) {
  auto gen = workload::JobGenerator::paper_default(
      common::Rng(5), 0, workload::NpbClass::kC, 0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.draw().priority, workload::JobPriority::kNormal);
  }
}

TEST(JobPriority, BadFractionThrows) {
  EXPECT_THROW(workload::JobGenerator::paper_default(
                   common::Rng(1), 0, workload::NpbClass::kC, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace pcap::power
