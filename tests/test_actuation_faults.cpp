// Actuation-plane fault tolerance: the lossy manager->node command path
// (ActuationChannel) and the manager-side ack/retry/divergence machinery
// (ActuationReconciler) that closes the loop around it — unit level,
// manager level, and whole-cluster runs that must stay bit-identical
// across worker-thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/uniform_policy.hpp"
#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "cluster/scenario.hpp"
#include "hw/node_spec.hpp"
#include "metrics/trace_recorder.hpp"
#include "power/actuation_channel.hpp"
#include "power/manager.hpp"
#include "power/policy_registry.hpp"
#include "power/reconciler.hpp"
#include "workload/npb.hpp"

namespace pcap {
namespace {

using power::ActuationChannel;
using power::ActuationFaultParams;
using power::ActuationReconciler;
using power::LevelCommand;
using power::ReconcilerParams;

/// Determinism-property tests accept an externally swept seed (CI runs
/// them across PCAP_FAULT_SEED=1..N); convergence tests keep their fixed
/// seeds — their thresholds are calibrated, not universal.
std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PCAP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

std::vector<hw::Node> make_nodes(std::size_t n) {
  std::vector<hw::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec());
  }
  return nodes;
}

// -- params validation ---------------------------------------------------

TEST(ActuationFaultParams, DisabledByDefault) {
  const ActuationFaultParams p;
  EXPECT_FALSE(p.enabled());
  p.validate();  // defaults are valid
}

TEST(ActuationFaultParams, AnyActiveChannelEnables) {
  ActuationFaultParams p;
  p.command_loss_rate = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ActuationFaultParams{};
  p.delivery_delay_cycles = 1;
  EXPECT_TRUE(p.enabled());
  p = ActuationFaultParams{};
  p.transition_failure_rate = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ActuationFaultParams{};
  p.partial_transition_rate = 0.1;
  EXPECT_TRUE(p.enabled());
  p = ActuationFaultParams{};
  p.reboot_rate = 0.1;
  EXPECT_TRUE(p.enabled());
}

TEST(ActuationFaultParams, BadValuesThrow) {
  ActuationFaultParams p;
  p.command_loss_rate = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActuationFaultParams{};
  p.partial_transition_rate = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActuationFaultParams{};
  p.delivery_delay_cycles = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActuationFaultParams{};
  p.reboot_rate = 0.1;
  p.reboot_duration_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ReconcilerParams, BadValuesThrow) {
  ReconcilerParams p;
  p.max_retries = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ReconcilerParams{};
  p.retry_backoff_base_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ReconcilerParams{};
  p.retry_backoff_cap_cycles = p.retry_backoff_base_cycles - 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// -- channel -------------------------------------------------------------

TEST(ActuationChannel, DisabledChannelPassesCommandsThrough) {
  ActuationChannel ch(ActuationFaultParams{}, common::Rng(1));
  auto nodes = make_nodes(3);
  ch.ensure_nodes({0, 1, 2});
  std::vector<LevelCommand> delivered;
  ch.begin_cycle(nodes, delivered);
  EXPECT_TRUE(delivered.empty());
  const std::vector<LevelCommand> cmds = {{0, 5}, {1, 0}, {2, 8}};
  ch.send(cmds, nodes, delivered);
  ASSERT_EQ(delivered.size(), 3u);
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    EXPECT_EQ(delivered[i].node, cmds[i].node);
    EXPECT_EQ(delivered[i].level, cmds[i].level);
  }
  EXPECT_EQ(ch.commands_lost(), 0u);
  EXPECT_EQ(ch.transitions_failed(), 0u);
  EXPECT_EQ(ch.in_flight_count(), 0u);
}

TEST(ActuationChannel, LossIsCountedAndSeedDeterministic) {
  ActuationFaultParams p;
  p.command_loss_rate = 0.5;
  ActuationChannel a(p, common::Rng(fault_seed(9)));
  ActuationChannel b(p, common::Rng(fault_seed(9)));
  auto nodes = make_nodes(4);
  a.ensure_nodes({0, 1, 2, 3});
  b.ensure_nodes({0, 1, 2, 3});

  std::vector<LevelCommand> da;
  std::vector<LevelCommand> db;
  std::size_t sent = 0;
  for (int c = 0; c < 100; ++c) {
    a.begin_cycle(nodes, da);
    b.begin_cycle(nodes, db);
    for (hw::NodeId id = 0; id < 4; ++id) {
      a.send({{id, 3}}, nodes, da);
      b.send({{id, 3}}, nodes, db);
      ++sent;
    }
  }
  EXPECT_GT(a.commands_lost(), 0u);
  EXPECT_EQ(a.commands_lost() + da.size(), sent);
  // Same seed, same traffic: bit-identical outcome.
  EXPECT_EQ(a.commands_lost(), b.commands_lost());
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].node, db[i].node);
    EXPECT_EQ(da[i].level, db[i].level);
  }
}

TEST(ActuationChannel, DelayedDeliveryLandsExactlyAfterDelay) {
  ActuationFaultParams p;
  p.delivery_delay_cycles = 2;
  ActuationChannel ch(p, common::Rng(2));
  auto nodes = make_nodes(1);
  ch.ensure_nodes({0});

  std::vector<LevelCommand> delivered;
  ch.begin_cycle(nodes, delivered);  // cycle 1
  ch.send({{0, 4}}, nodes, delivered);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(ch.in_flight_count(), 1u);

  ch.begin_cycle(nodes, delivered);  // cycle 2: still in the pipe
  EXPECT_TRUE(delivered.empty());

  ch.begin_cycle(nodes, delivered);  // cycle 3: lands
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].node, 0u);
  EXPECT_EQ(delivered[0].level, 4);
  EXPECT_EQ(ch.in_flight_count(), 0u);
}

TEST(ActuationChannel, TransitionFailureEatsTheCommand) {
  ActuationFaultParams p;
  p.transition_failure_rate = 1.0;
  ActuationChannel ch(p, common::Rng(3));
  auto nodes = make_nodes(1);
  ch.ensure_nodes({0});
  std::vector<LevelCommand> delivered;
  ch.begin_cycle(nodes, delivered);
  ch.send({{0, 4}}, nodes, delivered);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(ch.transitions_failed(), 1u);
}

TEST(ActuationChannel, PartialTransitionStopsOneStepIn) {
  ActuationFaultParams p;
  p.partial_transition_rate = 1.0;
  ActuationChannel ch(p, common::Rng(4));
  auto nodes = make_nodes(1);
  ch.ensure_nodes({0});
  std::vector<LevelCommand> delivered;
  ch.begin_cycle(nodes, delivered);

  // A multi-level drop (red floor: 9 -> 0) stalls one step in.
  ch.send({{0, 0}}, nodes, delivered);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].level, 8);
  EXPECT_EQ(ch.transitions_partial(), 1u);

  // Single-step commands cannot land part-way.
  delivered.clear();
  ch.send({{0, 8}}, nodes, delivered);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].level, 8);
  EXPECT_EQ(ch.transitions_partial(), 1u);
}

TEST(ActuationChannel, RebootResetsNodeFlushesQueueThenRecovers) {
  ActuationFaultParams p;
  p.delivery_delay_cycles = 2;
  p.reboot_rate = 1.0;  // reboots on the first draw
  p.reboot_duration_cycles = 3;
  ActuationChannel ch(p, common::Rng(5));
  auto nodes = make_nodes(1);
  nodes[0].set_level(2);  // mid-degradation
  ch.ensure_nodes({0});

  std::vector<LevelCommand> delivered;
  ch.send({{0, 4}}, nodes, delivered);  // queued for later delivery
  EXPECT_EQ(ch.in_flight_count(), 1u);

  ch.begin_cycle(nodes, delivered);  // reboot fires
  EXPECT_EQ(ch.reboot_events(), 1u);
  EXPECT_TRUE(ch.rebooting(0));
  // Firmware default: the node comes back at its highest level, and the
  // queued command died with the old kernel.
  EXPECT_TRUE(nodes[0].at_highest());
  EXPECT_EQ(ch.in_flight_count(), 0u);
  EXPECT_EQ(ch.commands_dropped_rebooting(), 1u);

  // Unreachable for the whole window...
  ch.send({{0, 4}}, nodes, delivered);
  EXPECT_EQ(ch.commands_dropped_rebooting(), 2u);
  ch.begin_cycle(nodes, delivered);
  ch.begin_cycle(nodes, delivered);
  EXPECT_TRUE(ch.rebooting(0));
  ch.begin_cycle(nodes, delivered);  // window expires
  EXPECT_FALSE(ch.rebooting(0));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(ch.reboot_events(), 1u);
}

TEST(ActuationChannel, StreamsAreRegistrationOrderIndependent) {
  ActuationFaultParams p;
  p.command_loss_rate = 0.4;
  p.transition_failure_rate = 0.2;
  const std::uint64_t seed = fault_seed(7);
  ActuationChannel a(p, common::Rng(seed));
  ActuationChannel b(p, common::Rng(seed));
  auto nodes = make_nodes(4);
  a.ensure_nodes({0, 1, 2, 3});
  b.ensure_nodes({3, 2});
  b.ensure_nodes({1, 0});

  std::vector<LevelCommand> da;
  std::vector<LevelCommand> db;
  for (int c = 0; c < 200; ++c) {
    a.begin_cycle(nodes, da);
    b.begin_cycle(nodes, db);
    const std::vector<LevelCommand> cmds = {{0, 3}, {1, 3}, {2, 3}, {3, 3}};
    a.send(cmds, nodes, da);
    b.send(cmds, nodes, db);
  }
  // Per-node draws depend only on (channel seed, node id, per-node draw
  // index) — never on who was registered first.
  EXPECT_EQ(a.commands_lost(), b.commands_lost());
  EXPECT_EQ(a.transitions_failed(), b.transitions_failed());
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].node, db[i].node);
    EXPECT_EQ(da[i].level, db[i].level);
  }
}

TEST(ActuationChannel, FaultStatePersistsAcrossCandidateChurn) {
  ActuationFaultParams p;
  p.reboot_rate = 1.0;
  p.reboot_duration_cycles = 10;
  ActuationChannel ch(p, common::Rng(6));
  auto nodes = make_nodes(2);
  ch.ensure_nodes({0});
  std::vector<LevelCommand> delivered;
  ch.begin_cycle(nodes, delivered);  // node 0 reboots
  EXPECT_TRUE(ch.rebooting(0));
  // The node leaves and re-enters the candidate set mid-window: it is
  // still the same rebooting machine.
  ch.ensure_nodes({0, 1});
  EXPECT_TRUE(ch.rebooting(0));
  EXPECT_FALSE(ch.rebooting(1));
}

// -- reconciler ----------------------------------------------------------

TEST(Reconciler, AckRequiresSampleStrictlyNewerThanIssue) {
  ActuationReconciler rec(ReconcilerParams{});
  ActuationReconciler::CycleWork work;

  rec.admit({{0, 5}}, /*cycle=*/10, work);
  ASSERT_EQ(work.commands.size(), 1u);
  EXPECT_TRUE(rec.in_flight(0));
  ASSERT_TRUE(rec.pending_target(0).has_value());
  EXPECT_EQ(*rec.pending_target(0), 5);

  // A sample stamped the issue cycle was collected before the command
  // went out — showing level 5 there is a coincidence, not an ack.
  rec.observe_node(0, 5, /*sample=*/10, /*now=*/10, work);
  EXPECT_TRUE(rec.in_flight(0));
  EXPECT_EQ(work.acks, 0u);

  // The old level showing afterwards is not an ack either.
  rec.observe_node(0, 9, /*sample=*/11, /*now=*/11, work);
  EXPECT_TRUE(rec.in_flight(0));

  // Target level, sampled after issue: confirmed.
  rec.observe_node(0, 5, /*sample=*/12, /*now=*/12, work);
  EXPECT_FALSE(rec.in_flight(0));
  EXPECT_EQ(work.acks, 1u);
  EXPECT_EQ(rec.believed(0, -1), 5);
  EXPECT_EQ(rec.total_acks(), 1u);
}

TEST(Reconciler, RetryScheduleHonorsBackoffAndCapThenAbandons) {
  ReconcilerParams p;
  p.max_retries = 3;
  p.retry_backoff_base_cycles = 2;
  p.retry_backoff_cap_cycles = 8;
  ActuationReconciler rec(p);
  ActuationReconciler::CycleWork work;
  rec.admit({{0, 5}}, /*cycle=*/0, work);

  std::vector<std::uint64_t> retry_cycles;
  for (std::uint64_t c = 1; c <= 30 && !rec.unresponsive(0); ++c) {
    work.clear();
    rec.finish_observation(c, work);
    if (work.retries > 0) {
      retry_cycles.push_back(c);
      ASSERT_EQ(work.commands.size(), 1u);
      EXPECT_EQ(work.commands[0].level, 5);
    }
  }
  // Issue at 0, base 2, cap 8: retries at 2, 2+4=6, 6+8=14 (doubling
  // clipped at the cap), abandonment due at 14+8=22.
  EXPECT_EQ(retry_cycles,
            (std::vector<std::uint64_t>{2, 6, 14}));
  EXPECT_TRUE(rec.unresponsive(0));
  EXPECT_FALSE(rec.in_flight(0));
  EXPECT_EQ(rec.total_retries(), 3u);
  EXPECT_EQ(rec.total_abandoned(), 1u);
  EXPECT_EQ(rec.unresponsive_count(), 1u);
}

TEST(Reconciler, BackoffArithmeticIsExactOutToMaxRetries) {
  // The doubling schedule must clip at the cap — including far past the
  // point where `base << retries` would overflow (the implementation
  // guards the shift at 30 doublings). 40 retries with base 1/cap 4:
  // gaps 1, 2, 4, 4, 4, ... and abandonment exactly one cap after the
  // last retry.
  ReconcilerParams p;
  p.max_retries = 40;
  p.retry_backoff_base_cycles = 1;
  p.retry_backoff_cap_cycles = 4;
  ActuationReconciler rec(p);
  ActuationReconciler::CycleWork work;
  rec.admit({{0, 5}}, /*cycle=*/0, work);

  std::vector<std::uint64_t> retry_cycles;
  std::uint64_t abandoned_at = 0;
  for (std::uint64_t c = 1; c <= 400 && !rec.unresponsive(0); ++c) {
    work.clear();
    rec.finish_observation(c, work);
    if (work.retries > 0) retry_cycles.push_back(c);
    if (work.abandoned > 0) abandoned_at = c;
  }
  ASSERT_EQ(retry_cycles.size(), 40u);
  EXPECT_EQ(retry_cycles[0], 1u);       // issue + base
  EXPECT_EQ(retry_cycles[1], 3u);       // + base*2
  EXPECT_EQ(retry_cycles[2], 7u);       // + base*4 == cap
  for (std::size_t i = 3; i < retry_cycles.size(); ++i) {
    EXPECT_EQ(retry_cycles[i] - retry_cycles[i - 1], 4u)
        << "retry " << i << " missed the cap";
  }
  EXPECT_TRUE(rec.unresponsive(0));
  EXPECT_EQ(abandoned_at, retry_cycles.back() + 4u);
  EXPECT_EQ(rec.total_retries(), 40u);
  EXPECT_EQ(rec.total_abandoned(), 1u);
}

TEST(Reconciler, AbandonReadmitAcrossARebootWindow) {
  // The full arc of a node that reboots mid-command: the throttle is
  // retried into the void, abandoned, and when the rebooted node
  // resurfaces at full power the reconciler readmits it — believed adopts
  // the post-reboot level — and a fresh throttle flows and acks.
  ReconcilerParams p;
  p.max_retries = 2;
  p.retry_backoff_base_cycles = 1;
  p.retry_backoff_cap_cycles = 2;
  ActuationReconciler rec(p);
  ActuationReconciler::CycleWork work;

  rec.observe_node(0, 5, /*sample=*/1, /*now=*/1, work);  // believed: 5
  rec.admit({{0, 3}}, /*cycle=*/1, work);  // throttle as the reboot starts
  // Cycles 2..6: the node is down — no telemetry, only the retry ladder
  // (issue+1, +1*2, then abandonment one cap later).
  for (std::uint64_t c = 2; c <= 6; ++c) {
    work.clear();
    rec.finish_observation(c, work);
  }
  EXPECT_TRUE(rec.unresponsive(0));
  EXPECT_EQ(rec.total_abandoned(), 1u);
  work.clear();
  rec.admit({{0, 3}}, /*cycle=*/7, work);  // policy still wants it: dropped
  EXPECT_TRUE(work.commands.empty());
  EXPECT_EQ(work.suppressed, 1u);

  // Reboot window ends: the node reports in at its reset (highest) level.
  // Readmission adopts reality instead of resurrecting the dead intent.
  work.clear();
  rec.observe_node(0, 9, /*sample=*/8, /*now=*/8, work);
  EXPECT_FALSE(rec.unresponsive(0));
  EXPECT_EQ(work.readmitted, 1u);
  EXPECT_EQ(work.divergences, 0u) << "readmission must not warn";
  EXPECT_EQ(rec.believed(0, -1), 9);

  // The next decision cycle re-issues the throttle and it acks normally.
  work.clear();
  rec.admit({{0, 3}}, /*cycle=*/9, work);
  ASSERT_EQ(work.commands.size(), 1u);
  rec.observe_node(0, 3, /*sample=*/10, /*now=*/10, work);
  EXPECT_EQ(work.acks, 1u);
  EXPECT_EQ(rec.believed(0, -1), 3);
  EXPECT_EQ(rec.unresponsive_count(), 0u);
}

TEST(Reconciler, UnresponsiveNodeSuppressesCommandsUntilReadmitted) {
  ReconcilerParams p;
  p.max_retries = 0;  // abandon on the first missed ack
  p.retry_backoff_base_cycles = 1;
  p.retry_backoff_cap_cycles = 1;
  ActuationReconciler rec(p);
  ActuationReconciler::CycleWork work;
  rec.admit({{0, 5}}, /*cycle=*/0, work);
  rec.finish_observation(/*cycle=*/1, work);
  EXPECT_EQ(work.abandoned, 1u);
  EXPECT_TRUE(rec.unresponsive(0));

  // Dead nodes get no more commands — not from the policy, not heals.
  work.clear();
  rec.admit({{0, 7}}, /*cycle=*/2, work);
  EXPECT_TRUE(work.commands.empty());
  EXPECT_EQ(work.suppressed, 1u);

  // A fresh sample earns readmission: believed adopts reality (the node
  // runs at whatever level it actually has; our abandoned intent is gone).
  rec.observe_node(0, 3, /*sample=*/5, /*now=*/5, work);
  EXPECT_FALSE(rec.unresponsive(0));
  EXPECT_EQ(work.readmitted, 1u);
  EXPECT_EQ(rec.believed(0, -1), 3);

  // ...and commands flow again.
  work.clear();
  rec.admit({{0, 7}}, /*cycle=*/6, work);
  EXPECT_EQ(work.commands.size(), 1u);
}

TEST(Reconciler, DivergenceHealsBackToBelievedLevel) {
  ActuationReconciler rec(ReconcilerParams{});
  ActuationReconciler::CycleWork work;

  rec.observe_node(0, 4, /*sample=*/1, /*now=*/1, work);  // first sight
  EXPECT_EQ(rec.believed(0, -1), 4);

  // The node resurfaces at its highest level with nothing in flight: a
  // reboot reset it under us. Heal back to what we believe it should be.
  rec.observe_node(0, 9, /*sample=*/2, /*now=*/2, work);
  EXPECT_EQ(work.divergences, 1u);
  EXPECT_EQ(work.heals, 1u);
  ASSERT_EQ(work.commands.size(), 1u);
  EXPECT_EQ(work.commands[0].node, 0u);
  EXPECT_EQ(work.commands[0].level, 4);
  EXPECT_TRUE(rec.in_flight(0));

  // The heal acks like any command.
  rec.observe_node(0, 4, /*sample=*/3, /*now=*/3, work);
  EXPECT_FALSE(rec.in_flight(0));
  EXPECT_EQ(work.acks, 1u);
}

TEST(Reconciler, ResurfacedOldSampleDoesNotFakeADivergence) {
  ActuationReconciler rec(ReconcilerParams{});
  ActuationReconciler::CycleWork work;
  rec.observe_node(0, 4, /*sample=*/5, /*now=*/5, work);
  // An older sample resurfaces (the freshest plausible view can move
  // backwards when newer deliveries are corrupt): not a level change.
  rec.observe_node(0, 9, /*sample=*/4, /*now=*/6, work);
  EXPECT_EQ(work.divergences, 0u);
  EXPECT_TRUE(work.commands.empty());
  EXPECT_EQ(rec.believed(0, -1), 4);
}

TEST(Reconciler, NewTargetSupersedesPendingAndResetsRetryBudget) {
  ReconcilerParams p;
  p.max_retries = 1;
  p.retry_backoff_base_cycles = 2;
  p.retry_backoff_cap_cycles = 4;
  ActuationReconciler rec(p);
  ActuationReconciler::CycleWork work;

  rec.admit({{0, 5}}, /*cycle=*/0, work);
  rec.finish_observation(/*cycle=*/2, work);  // retry 1 of 1 spent
  EXPECT_EQ(work.retries, 1u);

  // Re-deciding the same target is a no-op: the retry machinery owns it.
  work.clear();
  rec.admit({{0, 5}}, /*cycle=*/3, work);
  EXPECT_TRUE(work.commands.empty());

  // A different target replaces the pending command with a fresh budget.
  rec.admit({{0, 2}}, /*cycle=*/3, work);
  ASSERT_EQ(work.commands.size(), 1u);
  EXPECT_EQ(work.commands[0].level, 2);
  ASSERT_TRUE(rec.pending_target(0).has_value());
  EXPECT_EQ(*rec.pending_target(0), 2);

  // The fresh budget really is fresh: another retry fires instead of an
  // immediate abandonment.
  work.clear();
  rec.finish_observation(/*cycle=*/5, work);
  EXPECT_EQ(work.retries, 1u);
  EXPECT_EQ(work.abandoned, 0u);
  EXPECT_FALSE(rec.unresponsive(0));
}

// -- manager integration -------------------------------------------------

struct Rig {
  std::vector<hw::Node> nodes;
  sched::Scheduler scheduler;

  explicit Rig(int n)
      : scheduler(std::vector<int>(static_cast<std::size_t>(n), 12), {},
                  common::Rng(3)) {
    for (int i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<hw::NodeId>(i),
                         hw::tianhe1a_node_spec());
    }
  }

  void load(double utilization) {
    for (auto& n : nodes) {
      hw::OperatingPoint op;
      op.cpu_utilization = utilization;
      op.mem_used = n.spec().mem_total * 0.4;
      op.mem_total = n.spec().mem_total;
      op.tau = Seconds{1.0};
      op.nic_bandwidth = n.spec().nic_bandwidth;
      n.set_operating_point(op);
      n.set_busy(true);
    }
  }

  void run_job(workload::JobId id, int nprocs) {
    scheduler.submit(workload::Job(
        id, workload::npb_by_name("lu", workload::NpbClass::kC), nprocs,
        Seconds{0.0}));
    scheduler.try_launch(Seconds{0.0});
  }
};

power::CappingManagerParams yellow_rig_params() {
  power::CappingManagerParams p;
  p.thresholds.provision = Watts{2000.0};  // P_L = 1680, P_H = 1860
  p.thresholds.training_cycles = 0;
  p.thresholds.adjust_period_cycles = 1000;
  p.capping.steady_green_cycles = 3;
  p.collector.agent.utilization_noise = 0.0;
  p.collector.agent.nic_noise = 0.0;
  return p;
}

TEST(CappingManager, RebootChurnAbandonsAndReadmitsUnderTheRealChannel) {
  // Manager-level version of the arc above: real reboot windows from the
  // channel, real telemetry. With aggressive reboot churn and a tiny
  // retry budget, some commands must get abandoned; every abandoned node
  // must later readmit (the rig ends with nobody unresponsive for long).
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 48);
  power::CappingManagerParams p = yellow_rig_params();
  p.actuation.reboot_rate = 0.08;
  p.actuation.reboot_duration_cycles = 5;
  p.reconciliation.max_retries = 1;
  p.reconciliation.retry_backoff_base_cycles = 1;
  p.reconciliation.retry_backoff_cap_cycles = 2;
  power::CappingManager m(p, power::make_policy("mpc"), common::Rng(11));
  m.set_candidate_set({0, 1, 2, 3});

  for (int c = 1; c <= 120; ++c) {
    m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
            Seconds{static_cast<double>(c)});
  }
  EXPECT_GT(m.actuation_channel().reboot_events(), 0u);
  EXPECT_GT(m.reconciler().total_abandoned(), 0u);
  EXPECT_GT(m.reconciler().total_readmitted(), 0u);
  // Readmission is not a dead letter: every abandonment eventually came
  // back once the node's telemetry resurfaced.
  EXPECT_GE(m.reconciler().total_readmitted(),
            m.reconciler().total_abandoned() -
                m.reconciler().unresponsive_count());
}

TEST(CappingManager, DeadActuatorIsRetriedThenAbandonedWithoutThrottling) {
  Rig rig(4);
  rig.load(0.9);
  rig.run_job(1, 24);  // nodes 0, 1
  power::CappingManagerParams p = yellow_rig_params();
  // Every delivered transition fails: the actuator is permanently dead.
  p.actuation.transition_failure_rate = 1.0;
  p.reconciliation.max_retries = 2;
  p.reconciliation.retry_backoff_base_cycles = 1;
  p.reconciliation.retry_backoff_cap_cycles = 4;
  power::CappingManager m(p, power::make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1, 2, 3});

  std::size_t retries = 0;
  std::uint64_t max_abandoned = 0;
  power::ManagerReport r;
  for (int c = 1; c <= 20; ++c) {
    r = m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler,
                Seconds{static_cast<double>(c)});
    retries += r.retries;
    max_abandoned = std::max(max_abandoned, r.commands_abandoned);
  }
  // Sustained yellow pressure, but not a single level ever changed: the
  // channel ate everything, visibly.
  for (const auto& n : rig.nodes) EXPECT_TRUE(n.at_highest());
  EXPECT_GT(m.actuation_channel().transitions_failed(), 0u);
  EXPECT_GT(retries, 0u);
  // The retry budget ran out at least once per targeted node; abandoned
  // nodes are readmitted as soon as their (healthy) telemetry resurfaces,
  // so we assert the cumulative count, not a persistent unresponsive set.
  EXPECT_GE(max_abandoned, 2u);
  EXPECT_EQ(r.transitions_failed, m.actuation_channel().transitions_failed());
}

TEST(CappingManager, ExternalLevelChangeIsHealedBack) {
  Rig rig(2);
  rig.load(0.9);
  rig.run_job(1, 24);
  power::CappingManagerParams p = yellow_rig_params();
  // Perfect channel: this test isolates the divergence/heal machinery.
  power::CappingManager m(p, power::make_policy("mpc"), common::Rng(1));
  m.set_candidate_set({0, 1});

  m.cycle(Watts{1700.0}, rig.nodes, rig.scheduler, Seconds{1.0});  // yellow
  EXPECT_EQ(rig.nodes[0].level(), 8);
  // A green cycle acks the throttle and leaves nothing pending (sustained
  // yellow would re-throttle every cycle, and a disagreeing observation
  // with a command in flight is "keep waiting", not a divergence).
  auto r = m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{2.0});
  EXPECT_GT(r.acks, 0u);  // the throttle confirmed via telemetry

  // An operator (or firmware reset) yanks node 0 back to full power
  // behind the manager's back.
  rig.nodes[0].set_level(9);
  r = m.cycle(Watts{100.0}, rig.nodes, rig.scheduler, Seconds{3.0});
  EXPECT_EQ(r.divergences, 1u);
  EXPECT_EQ(r.heals, 1u);
  // The healing command went out through the (perfect) channel this same
  // cycle and restored the believed level.
  EXPECT_EQ(rig.nodes[0].level(), 8);
}

// -- whole-cluster runs --------------------------------------------------

struct RunResult {
  std::vector<metrics::CyclePoint> points;
  std::vector<metrics::JobRecord> finished;
  double total_energy_j = 0.0;
  power::ManagerReport last;
};

/// A degraded-actuation cluster run: command loss AND delivery delay AND
/// failed/partial transitions AND reboot churn, on top of lossy/delayed
/// telemetry, with the parallel node sweeps forced on.
RunResult run_degraded_actuation_cluster(std::size_t worker_threads) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 200;
  cfg.spec = hw::tianhe1a_node_spec();
  cfg.tick = Seconds{1.0};
  cfg.control_period = Seconds{4.0};
  cfg.seed = fault_seed(20260807);
  cfg.scheduler.max_procs_per_node = 3;
  cfg.worker_threads = worker_threads;
  cfg.parallel_node_threshold = 1;
  cfg.parallel_grain = 16;
  cfg.privileged_job_fraction = 0.3;
  cluster::Cluster cl(cfg);

  power::CappingManagerParams p;
  p.thresholds.provision = cl.theoretical_peak() * 0.75;
  p.thresholds.training_cycles = 0;
  p.thresholds.freeze_at_provision = true;
  p.cycle_period = cfg.control_period;
  p.collector.parallel_threshold = 16;
  p.collector.parallel_grain = 16;
  // Collect every cycle: this rig wants maximum divergence-detection
  // density, not the steady-green stride economy.
  p.green_collect_stride = 1;
  p.collector.transport.loss_rate = 0.05;
  p.collector.transport.delay_cycles = 1;
  p.max_sample_age_cycles = 3;
  p.actuation.command_loss_rate = 0.10;
  p.actuation.delivery_delay_cycles = 1;
  p.actuation.transition_failure_rate = 0.02;
  p.actuation.partial_transition_rate = 0.05;
  p.actuation.reboot_rate = 1e-3;
  p.actuation.reboot_duration_cycles = 20;
  p.reconciliation.max_retries = 4;
  p.reconciliation.retry_backoff_base_cycles = 2;
  p.reconciliation.retry_backoff_cap_cycles = 16;
  p.selector = power::CandidateSelectorParams{};
  p.selector->reselect_period_cycles = 5;
  auto mgr = std::make_unique<power::CappingManager>(
      p, std::make_unique<baselines::UniformAllNodesPolicy>(),
      common::Rng(cfg.seed ^ 0x9d2c5680u));
  mgr->set_candidate_set(cl.controllable_nodes());
  cl.set_manager(std::move(mgr));

  cl.start_recording();
  cl.run(Seconds{500.0});

  RunResult out;
  out.points = cl.recorder().points();
  out.finished = cl.finished_records();
  for (const metrics::JobRecord& r : out.finished) {
    out.total_energy_j += r.energy_j;
  }
  out.last = cl.last_report();
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const metrics::CyclePoint& pa = a.points[i];
    const metrics::CyclePoint& pb = b.points[i];
    EXPECT_EQ(pa.time_s, pb.time_s) << "tick " << i;
    EXPECT_EQ(pa.power_w, pb.power_w) << "tick " << i;
    EXPECT_EQ(pa.state, pb.state) << "tick " << i;
    EXPECT_EQ(pa.targets, pb.targets) << "tick " << i;
    EXPECT_EQ(pa.transitions, pb.transitions) << "tick " << i;
    EXPECT_EQ(pa.retries, pb.retries) << "tick " << i;
    EXPECT_EQ(pa.divergences, pb.divergences) << "tick " << i;
    EXPECT_EQ(pa.heals, pb.heals) << "tick " << i;
  }
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].id, b.finished[i].id) << "job " << i;
    EXPECT_EQ(a.finished[i].energy_j, b.finished[i].energy_j) << "job " << i;
  }
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.last.commands_lost, b.last.commands_lost);
  EXPECT_EQ(a.last.reboot_events, b.last.reboot_events);
  EXPECT_EQ(a.last.transitions_failed, b.last.transitions_failed);
  EXPECT_EQ(a.last.transitions_partial, b.last.transitions_partial);
  EXPECT_EQ(a.last.commands_abandoned, b.last.commands_abandoned);
}

TEST(ActuationFaultTolerance, DegradedRunSurvivesAndStaysDeterministic) {
  const RunResult serial = run_degraded_actuation_cluster(1);
  ASSERT_GT(serial.points.size(), 400u);

  // The actuation fault machinery really fired...
  EXPECT_GT(serial.last.commands_lost, 0u);
  EXPECT_GT(serial.last.reboot_events, 0u);
  std::size_t retries = 0;
  std::size_t heals = 0;
  for (const metrics::CyclePoint& p : serial.points) {
    retries += p.retries;
    heals += p.heals;
  }
  EXPECT_GT(retries, 0u) << "no command was ever retried";
  EXPECT_GT(heals, 0u) << "no divergence was ever healed";

  // ...and the run is still bit-identical under parallel sweeps: the
  // channel and reconciler run serially inside the manager cycle, so
  // worker-thread count must not perturb a single draw.
  const RunResult four = run_degraded_actuation_cluster(4);
  expect_identical(serial, four);
}

TEST(ActuationFaultTolerance, LossyScenarioStaysCappedAndCountsItsWounds) {
  cluster::ExperimentConfig cfg = cluster::lossy_actuation_scenario(31);
  // Bench-sized windows; reboots made frequent enough that a short run is
  // guaranteed to see divergences (a reboot mid-degradation is the classic
  // believed-level violation).
  cfg.calibration_duration = Seconds{900.0};
  cfg.training = Seconds{900.0};
  cfg.measured = Seconds{1800.0};
  cfg.actuation.reboot_rate = 1e-3;

  const cluster::ExperimentResult r = cluster::run_experiment(cfg);

  EXPECT_LE(r.p_max, r.provision) << "capping lost control of the actuator";
  EXPECT_GT(r.command_retries, 0u);
  EXPECT_GT(r.divergences, 0u);
  EXPECT_GT(r.heals, 0u);
  EXPECT_GT(r.commands_lost, 0u);
  EXPECT_GT(r.reboot_events, 0u);
  EXPECT_GT(r.transitions_partial + r.transitions_failed, 0u);
  // Jobs kept finishing: reconciliation must not starve the cluster by
  // retrying throttles forever.
  EXPECT_GT(r.perf.finished_jobs, 0u);
}

}  // namespace
}  // namespace pcap
