#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcap::common {
namespace {

/// RAII capture of logger output; restores level and sink on destruction.
class LogCapture {
 public:
  LogCapture() : saved_level_(Logger::instance().level()) {
    Logger::instance().set_sink([this](LogLevel level, const std::string& m) {
      entries_.emplace_back(level, m);
    });
  }
  ~LogCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(saved_level_);
  }
  const std::vector<std::pair<LogLevel, std::string>>& entries() const {
    return entries_;
  }

 private:
  LogLevel saved_level_;
  std::vector<std::pair<LogLevel, std::string>> entries_;
};

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);  // fallback
}

TEST(Logging, SinkReceivesFormattedMessage) {
  LogCapture cap;
  Logger::instance().set_level(LogLevel::kInfo);
  PCAP_INFO("power %d W on node %s", 415, "n07");
  ASSERT_EQ(cap.entries().size(), 1u);
  EXPECT_EQ(cap.entries()[0].first, LogLevel::kInfo);
  EXPECT_EQ(cap.entries()[0].second, "power 415 W on node n07");
}

TEST(Logging, LevelFiltersLowerSeverity) {
  LogCapture cap;
  Logger::instance().set_level(LogLevel::kWarn);
  PCAP_DEBUG("dropped %d", 1);
  PCAP_INFO("dropped too");
  PCAP_WARN("kept");
  PCAP_ERROR("kept %s", "also");
  ASSERT_EQ(cap.entries().size(), 2u);
  EXPECT_EQ(cap.entries()[0].second, "kept");
  EXPECT_EQ(cap.entries()[1].second, "kept also");
}

TEST(Logging, OffSilencesEverything) {
  LogCapture cap;
  Logger::instance().set_level(LogLevel::kOff);
  PCAP_ERROR("even errors");
  EXPECT_TRUE(cap.entries().empty());
}

TEST(Logging, EnabledGuard) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_TRUE(PCAP_LOG_ENABLED(LogLevel::kError));
  EXPECT_TRUE(PCAP_LOG_ENABLED(LogLevel::kWarn));
  EXPECT_FALSE(PCAP_LOG_ENABLED(LogLevel::kInfo));
  Logger::instance().set_level(LogLevel::kWarn);
}

TEST(Logging, LongMessagesSurviveFormatting) {
  LogCapture cap;
  Logger::instance().set_level(LogLevel::kInfo);
  const std::string big(4096, 'x');
  PCAP_INFO("%s", big.c_str());
  ASSERT_EQ(cap.entries().size(), 1u);
  EXPECT_EQ(cap.entries()[0].second.size(), 4096u);
}

}  // namespace
}  // namespace pcap::common
