#include "telemetry/collector.hpp"

#include <gtest/gtest.h>

#include "hw/node_spec.hpp"

namespace pcap::telemetry {
namespace {

std::vector<hw::Node> make_nodes(std::size_t n) {
  std::vector<hw::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    hw::Node node(static_cast<hw::NodeId>(i), hw::tianhe1a_node_spec());
    hw::OperatingPoint op;
    op.cpu_utilization = 0.5;
    op.mem_used = node.spec().mem_total * 0.3;
    op.mem_total = node.spec().mem_total;
    op.tau = Seconds{1.0};
    op.nic_bandwidth = node.spec().nic_bandwidth;
    node.set_operating_point(op);
    node.set_busy(true);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

CollectorParams quiet_params() {
  CollectorParams p;
  p.agent.utilization_noise = 0.0;
  p.agent.nic_noise = 0.0;
  return p;
}

TEST(Collector, CandidateSetSortedAndDeduplicated) {
  Collector c(quiet_params(), common::Rng(1));
  c.set_candidate_set({3, 1, 3, 2});
  EXPECT_EQ(c.candidate_set(), (std::vector<hw::NodeId>{1, 2, 3}));
  EXPECT_TRUE(c.is_candidate(1));
  EXPECT_FALSE(c.is_candidate(0));
}

TEST(Collector, CollectRecordsLatestSample) {
  Collector c(quiet_params(), common::Rng(2));
  c.set_candidate_set({0, 1});
  auto nodes = make_nodes(3);
  c.collect(nodes, Seconds{1.0}, 1);
  const auto s = c.latest(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->time, Seconds{1.0});
  EXPECT_DOUBLE_EQ(s->estimated_power.value(),
                   nodes[0].estimated_power().value());
}

TEST(Collector, NonCandidateNotSampled) {
  Collector c(quiet_params(), common::Rng(3));
  c.set_candidate_set({0});
  auto nodes = make_nodes(3);
  c.collect(nodes, Seconds{1.0}, 1);
  EXPECT_FALSE(c.latest(2).has_value());
}

TEST(Collector, PreviousRequiresTwoSamples) {
  Collector c(quiet_params(), common::Rng(4));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  c.collect(nodes, Seconds{1.0}, 1);
  EXPECT_FALSE(c.previous(0).has_value());
  c.collect(nodes, Seconds{2.0}, 1);
  const auto prev = c.previous(0);
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(prev->time, Seconds{1.0});
  EXPECT_EQ(c.latest(0)->time, Seconds{2.0});
}

TEST(Collector, HistoryRollsOver) {
  CollectorParams p = quiet_params();
  p.history_depth = 3;
  Collector c(p, common::Rng(5));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  for (int t = 1; t <= 10; ++t) {
    c.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  EXPECT_EQ(c.latest(0)->time, Seconds{10.0});
  EXPECT_EQ(c.previous(0)->time, Seconds{9.0});
}

TEST(Collector, RemovedCandidateDropsHistory) {
  Collector c(quiet_params(), common::Rng(6));
  c.set_candidate_set({0, 1});
  auto nodes = make_nodes(2);
  c.collect(nodes, Seconds{1.0}, 1);
  c.set_candidate_set({0});
  EXPECT_FALSE(c.latest(1).has_value());
  // Re-adding starts fresh.
  c.set_candidate_set({0, 1});
  EXPECT_FALSE(c.latest(1).has_value());
}

TEST(Collector, SurvivingCandidateKeepsHistoryAcrossSetChange) {
  Collector c(quiet_params(), common::Rng(7));
  c.set_candidate_set({0, 1});
  auto nodes = make_nodes(2);
  c.collect(nodes, Seconds{1.0}, 1);
  c.set_candidate_set({0});
  EXPECT_TRUE(c.latest(0).has_value());
}

TEST(Collector, EstimatedCandidatePowerSums) {
  Collector c(quiet_params(), common::Rng(8));
  c.set_candidate_set({0, 1});
  auto nodes = make_nodes(2);
  c.collect(nodes, Seconds{1.0}, 1);
  const double expected = nodes[0].estimated_power().value() +
                          nodes[1].estimated_power().value();
  EXPECT_NEAR(c.estimated_candidate_power().value(), expected, 1e-9);
}

TEST(Collector, OutOfRangeCandidateThrows) {
  Collector c(quiet_params(), common::Rng(9));
  c.set_candidate_set({5});
  auto nodes = make_nodes(2);
  EXPECT_THROW(c.collect(nodes, Seconds{1.0}, 1), std::out_of_range);
}

TEST(Collector, ManagerUtilizationGrowsWithCandidates) {
  auto nodes = make_nodes(64);
  Collector small(quiet_params(), common::Rng(10));
  small.set_candidate_set({0, 1, 2, 3});
  small.collect(nodes, Seconds{1.0}, 8);

  Collector large(quiet_params(), common::Rng(10));
  std::vector<hw::NodeId> all;
  for (hw::NodeId i = 0; i < 64; ++i) all.push_back(i);
  large.set_candidate_set(all);
  large.collect(nodes, Seconds{1.0}, 8);

  EXPECT_GT(large.last_cycle_manager_utilization(),
            small.last_cycle_manager_utilization());
}

TEST(Collector, TooShallowHistoryThrows) {
  CollectorParams p = quiet_params();
  p.history_depth = 1;
  EXPECT_THROW(Collector(p, common::Rng(1)), std::invalid_argument);
}

TEST(CollectorTransport, LossDropsSomeReports) {
  CollectorParams p = quiet_params();
  p.transport.loss_rate = 0.5;
  Collector c(p, common::Rng(21));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  for (int t = 1; t <= 400; ++t) {
    c.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  EXPECT_GT(c.samples_lost(), 100u);
  EXPECT_GT(c.samples_delivered(), 100u);
  EXPECT_EQ(c.samples_lost() + c.samples_delivered(), 400u);
}

TEST(CollectorTransport, LatestSurvivesLoss) {
  // Even under heavy loss the manager keeps acting on the freshest
  // delivered sample rather than failing.
  CollectorParams p = quiet_params();
  p.transport.loss_rate = 0.8;
  Collector c(p, common::Rng(22));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  for (int t = 1; t <= 200; ++t) {
    c.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  const auto s = c.latest(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(s->time.value(), 0.0);
  EXPECT_LE(s->time.value(), 200.0);
}

TEST(CollectorTransport, DelayShiftsDelivery) {
  CollectorParams p = quiet_params();
  p.transport.delay_cycles = 2;
  Collector c(p, common::Rng(23));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  c.collect(nodes, Seconds{1.0}, 1);
  EXPECT_FALSE(c.latest(0).has_value());  // still in flight
  c.collect(nodes, Seconds{2.0}, 1);
  EXPECT_FALSE(c.latest(0).has_value());
  c.collect(nodes, Seconds{3.0}, 1);
  const auto s = c.latest(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->time.value(), 1.0);  // the cycle-1 sample arrived
}

TEST(CollectorTransport, DelayedSamplesArriveInOrder) {
  CollectorParams p = quiet_params();
  p.transport.delay_cycles = 3;
  Collector c(p, common::Rng(24));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  for (int t = 1; t <= 10; ++t) {
    c.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  const auto latest = c.latest(0);
  const auto prev = c.previous(0);
  ASSERT_TRUE(latest && prev);
  EXPECT_DOUBLE_EQ(latest->time.value(), 7.0);  // t=10 delivered t-3
  EXPECT_DOUBLE_EQ(prev->time.value(), 6.0);
}

TEST(Collector, SamplesAreStampedWithTheCollectionCycle) {
  Collector c(quiet_params(), common::Rng(31));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  EXPECT_EQ(c.cycle_count(), 0u);
  c.collect(nodes, Seconds{1.0}, 1);
  c.collect(nodes, Seconds{2.0}, 1);
  EXPECT_EQ(c.cycle_count(), 2u);
  EXPECT_EQ(c.latest(0)->cycle, 2u);
  EXPECT_EQ(c.previous(0)->cycle, 1u);
}

TEST(CollectorTransport, DelayedSampleKeepsItsSamplingCycleStamp) {
  // The stamp records when the sample was *taken*, not when it arrived —
  // that difference is exactly the staleness the manager must see.
  CollectorParams p = quiet_params();
  p.transport.delay_cycles = 3;
  Collector c(p, common::Rng(32));
  c.set_candidate_set({0});
  auto nodes = make_nodes(1);
  for (int t = 1; t <= 5; ++t) {
    c.collect(nodes, Seconds{static_cast<double>(t)}, 1);
  }
  const auto s = c.latest(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->cycle, 2u);  // taken at cycle 2, delivered at cycle 5
  EXPECT_EQ(c.cycle_count() - s->cycle, 3u);
}

TEST(CollectorTransport, BadParamsThrow) {
  CollectorParams p = quiet_params();
  p.transport.loss_rate = 1.0;
  EXPECT_THROW(Collector(p, common::Rng(1)), std::invalid_argument);
  p = quiet_params();
  p.transport.loss_rate = -0.1;
  EXPECT_THROW(Collector(p, common::Rng(1)), std::invalid_argument);
  p = quiet_params();
  p.transport.delay_cycles = -1;
  EXPECT_THROW(Collector(p, common::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace pcap::telemetry
