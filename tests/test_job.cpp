#include "workload/job.hpp"

#include <gtest/gtest.h>

#include "workload/npb.hpp"

namespace pcap::workload {
namespace {

Job make_job(int nprocs = 24) {
  return Job(1, npb_by_name("lu", NpbClass::kC), nprocs, Seconds{100.0});
}

TEST(Job, StartsQueued) {
  const Job j = make_job();
  EXPECT_EQ(j.state(), JobState::kQueued);
  EXPECT_EQ(j.id(), 1u);
  EXPECT_EQ(j.nprocs(), 24);
  EXPECT_EQ(j.submit_time(), Seconds{100.0});
}

TEST(Job, BaselineDurationMatchesAppModel) {
  const Job j = make_job(64);
  EXPECT_DOUBLE_EQ(j.baseline_duration().value(),
                   npb_by_name("lu", NpbClass::kC).duration_at(64));
}

TEST(Job, RejectsNonPositiveProcs) {
  EXPECT_THROW(Job(1, npb_by_name("ep"), 0, Seconds{0.0}),
               std::invalid_argument);
}

TEST(Job, NodesNeededCeils) {
  const Job j = make_job(24);
  EXPECT_EQ(j.nodes_needed(12), 2);
  EXPECT_EQ(j.nodes_needed(10), 3);
  EXPECT_EQ(j.nodes_needed(24), 1);
  EXPECT_EQ(j.nodes_needed(5), 5);
}

TEST(Job, ProcsOnNodeFillsWholeNodesFirst) {
  const Job j = make_job(25);
  EXPECT_EQ(j.procs_on_node(0, 12), 12);
  EXPECT_EQ(j.procs_on_node(1, 12), 12);
  EXPECT_EQ(j.procs_on_node(2, 12), 1);
  EXPECT_EQ(j.procs_on_node(3, 12), 0);  // beyond the allocation
}

TEST(Job, StartTransitionsToRunning) {
  Job j = make_job(24);
  j.start({0, 1}, {12, 12}, Seconds{150.0});
  EXPECT_EQ(j.state(), JobState::kRunning);
  EXPECT_EQ(j.start_time(), Seconds{150.0});
  EXPECT_EQ(j.nodes().size(), 2u);
  EXPECT_EQ(j.placement(), (std::vector<int>{12, 12}));
}

TEST(Job, StartValidatesPlacement) {
  Job j = make_job(24);
  EXPECT_THROW(j.start({}, {}, Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW(j.start({0}, {12, 12}, Seconds{0.0}), std::invalid_argument);
  EXPECT_THROW(j.start({0, 1}, {12, 11}, Seconds{0.0}),
               std::invalid_argument);  // covers 23, not 24
  EXPECT_THROW(j.start({0, 1}, {24, 0}, Seconds{0.0}), std::invalid_argument);
}

TEST(Job, DoubleStartThrows) {
  Job j = make_job(12);
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_THROW(j.start({1}, {12}, Seconds{1.0}), std::logic_error);
}

TEST(Job, AdvanceAccumulatesProgress) {
  Job j = make_job(12);
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_FALSE(j.advance(Seconds{10.0}, 1.0, Seconds{10.0}));
  EXPECT_DOUBLE_EQ(j.progress_seconds(), 10.0);
  EXPECT_FALSE(j.advance(Seconds{10.0}, 0.5, Seconds{20.0}));
  EXPECT_DOUBLE_EQ(j.progress_seconds(), 15.0);
}

TEST(Job, AdvanceWithoutStartThrows) {
  Job j = make_job(12);
  EXPECT_THROW(j.advance(Seconds{1.0}, 1.0, Seconds{1.0}), std::logic_error);
}

TEST(Job, NegativeAdvanceThrows) {
  Job j = make_job(12);
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_THROW(j.advance(Seconds{-1.0}, 1.0, Seconds{0.0}),
               std::invalid_argument);
  EXPECT_THROW(j.advance(Seconds{1.0}, -0.1, Seconds{1.0}),
               std::invalid_argument);
}

TEST(Job, FinishesExactlyAtFullSpeed) {
  Job j = make_job(12);
  const double dur = j.baseline_duration().value();
  j.start({0}, {12}, Seconds{0.0});
  double t = 0.0;
  bool done = false;
  while (!done) {
    t += 1.0;
    done = j.advance(Seconds{1.0}, 1.0, Seconds{t});
  }
  EXPECT_EQ(j.state(), JobState::kFinished);
  EXPECT_NEAR(j.actual_duration().value(), dur, 1.0 + 1e-9);
}

TEST(Job, FinishTimeInterpolatesWithinStep) {
  Job j = make_job(12);
  const double dur = j.baseline_duration().value();
  j.start({0}, {12}, Seconds{0.0});
  // One huge step: the interpolated finish time lands exactly at dur.
  EXPECT_TRUE(j.advance(Seconds{dur * 2.0}, 1.0, Seconds{dur * 2.0}));
  EXPECT_NEAR(j.finish_time().value(), dur, 1e-6);
  EXPECT_NEAR(j.actual_duration().value(), dur, 1e-6);
}

TEST(Job, ThrottledJobTakesLonger) {
  Job a = make_job(12);
  Job b = make_job(12);
  a.start({0}, {12}, Seconds{0.0});
  b.start({1}, {12}, Seconds{0.0});
  double t = 0.0;
  bool a_done = false;
  bool b_done = false;
  double a_finish = 0.0;
  double b_finish = 0.0;
  while (!a_done || !b_done) {
    t += 1.0;
    if (!a_done && a.advance(Seconds{1.0}, 1.0, Seconds{t})) {
      a_done = true;
      a_finish = a.finish_time().value();
    }
    if (!b_done && b.advance(Seconds{1.0}, 0.8, Seconds{t})) {
      b_done = true;
      b_finish = b.finish_time().value();
    }
  }
  EXPECT_GT(b_finish, a_finish);
  EXPECT_NEAR(b_finish / a_finish, 1.0 / 0.8, 0.01);
}

TEST(Job, RemainingSecondsCountsDown) {
  Job j = make_job(12);
  const double dur = j.baseline_duration().value();
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_DOUBLE_EQ(j.remaining_seconds(), dur);
  j.advance(Seconds{10.0}, 1.0, Seconds{10.0});
  EXPECT_DOUBLE_EQ(j.remaining_seconds(), dur - 10.0);
}

TEST(Job, CurrentPhaseFollowsProgress) {
  Job j(7, npb_by_name("lu", NpbClass::kD), 12, Seconds{0.0});
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_EQ(j.current_phase().name, "setbv+setiv");  // prologue
  // Push through the prologue.
  j.advance(Seconds{95.0}, 1.0, Seconds{95.0});
  EXPECT_EQ(j.current_phase().name, "ssor-sweep");
}

TEST(Job, ActualDurationBeforeFinishThrows) {
  Job j = make_job(12);
  EXPECT_THROW((void)j.actual_duration(), std::logic_error);
  j.start({0}, {12}, Seconds{0.0});
  EXPECT_THROW((void)j.actual_duration(), std::logic_error);
}

TEST(Job, StateNames) {
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(job_state_name(JobState::kFinished), "finished");
}

}  // namespace
}  // namespace pcap::workload
