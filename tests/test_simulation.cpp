#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcap::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), Seconds{0.0});
}

TEST(Simulation, RunUntilAdvancesClockToEnd) {
  Simulation sim;
  sim.run_until(Seconds{10.0});
  EXPECT_EQ(sim.now(), Seconds{10.0});
}

TEST(Simulation, ScheduleInFiresAtRightTime) {
  Simulation sim;
  Seconds fired{-1.0};
  sim.schedule_in(Seconds{5.0}, [&] { fired = sim.now(); });
  sim.run_until(Seconds{10.0});
  EXPECT_EQ(fired, Seconds{5.0});
}

TEST(Simulation, ScheduleAtAbsoluteTime) {
  Simulation sim;
  sim.run_until(Seconds{2.0});
  Seconds fired{-1.0};
  sim.schedule_at(Seconds{7.0}, [&] { fired = sim.now(); });
  sim.run_until(Seconds{10.0});
  EXPECT_EQ(fired, Seconds{7.0});
}

TEST(Simulation, EventsBeyondEndDoNotFire) {
  Simulation sim;
  bool ran = false;
  sim.schedule_in(Seconds{5.0}, [&] { ran = true; });
  sim.run_until(Seconds{4.0});
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), Seconds{4.0});
  sim.run_until(Seconds{5.0});
  EXPECT_TRUE(ran);
}

TEST(Simulation, NegativeDelayThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_in(Seconds{-1.0}, [] {}), std::invalid_argument);
}

TEST(Simulation, PastAbsoluteTimeThrows) {
  Simulation sim;
  sim.run_until(Seconds{5.0});
  EXPECT_THROW(sim.schedule_at(Seconds{4.0}, [] {}), std::invalid_argument);
}

TEST(Simulation, PastEndThrows) {
  Simulation sim;
  sim.run_until(Seconds{5.0});
  EXPECT_THROW(sim.run_until(Seconds{4.0}), std::invalid_argument);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_in(Seconds{1.0}, [&] {
    times.push_back(sim.now().value());
    sim.schedule_in(Seconds{1.0}, [&] { times.push_back(sim.now().value()); });
  });
  sim.run_until(Seconds{10.0});
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulation, PeriodicFiresAtFixedCadence) {
  Simulation sim;
  std::vector<double> times;
  sim.every(Seconds{2.0}, Seconds{2.0},
            [&](Seconds t) { times.push_back(t.value()); });
  sim.run_until(Seconds{9.0});
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0, 8.0}));
}

TEST(Simulation, PeriodicWithZeroOffsetFiresImmediately) {
  Simulation sim;
  int count = 0;
  sim.every(Seconds{1.0}, Seconds{0.0}, [&](Seconds) { ++count; });
  sim.run_until(Seconds{3.0});
  EXPECT_EQ(count, 4);  // t = 0, 1, 2, 3
}

TEST(Simulation, PeriodicCancelStopsFirings) {
  Simulation sim;
  int count = 0;
  PeriodicHandle h =
      sim.every(Seconds{1.0}, Seconds{1.0}, [&](Seconds) { ++count; });
  sim.run_until(Seconds{3.0});
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  sim.run_until(Seconds{10.0});
  EXPECT_EQ(count, 3);
}

TEST(Simulation, PeriodicCancelFromInsideCallback) {
  Simulation sim;
  int count = 0;
  PeriodicHandle h;
  h = sim.every(Seconds{1.0}, Seconds{1.0}, [&](Seconds) {
    if (++count == 2) h.cancel();
  });
  sim.run_until(Seconds{10.0});
  EXPECT_EQ(count, 2);
}

TEST(Simulation, NonPositivePeriodThrows) {
  Simulation sim;
  EXPECT_THROW(sim.every(Seconds{0.0}, Seconds{0.0}, [](Seconds) {}),
               std::invalid_argument);
}

TEST(Simulation, StepExecutesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_in(Seconds{1.0}, [&] { ++count; });
  sim.schedule_in(Seconds{2.0}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), Seconds{1.0});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, StepAfterRunUntilKeepsTimeMonotonic) {
  // run_until(5) advances the clock past the first event and leaves the
  // second queued; step() must accept it (time moves forward) and never
  // rewind now(). The converse — a stale event — makes step() throw, but
  // the scheduling API already refuses to create one.
  Simulation sim;
  int count = 0;
  sim.schedule_at(Seconds{1.0}, [&] { ++count; });
  sim.schedule_at(Seconds{6.0}, [&] { ++count; });
  sim.run_until(Seconds{5.0});
  EXPECT_EQ(count, 1);
  EXPECT_NO_THROW(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), Seconds{6.0});
}

TEST(Simulation, EventsProcessedCounter) {
  Simulation sim;
  sim.every(Seconds{1.0}, Seconds{1.0}, [](Seconds) {});
  sim.run_until(Seconds{5.0});
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulation, ResetClearsEverything) {
  Simulation sim;
  bool ran = false;
  sim.schedule_in(Seconds{1.0}, [&] { ran = true; });
  sim.reset();
  sim.run_until(Seconds{5.0});
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), Seconds{5.0});
}

TEST(Simulation, TwoPeriodicsStableOrderAtTies) {
  Simulation sim;
  std::vector<int> order;
  sim.every(Seconds{1.0}, Seconds{1.0}, [&](Seconds) { order.push_back(1); });
  sim.every(Seconds{1.0}, Seconds{1.0}, [&](Seconds) { order.push_back(2); });
  sim.run_until(Seconds{2.0});
  ASSERT_EQ(order.size(), 4u);
  // First-registered process fires first at every shared instant.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

}  // namespace
}  // namespace pcap::sim
