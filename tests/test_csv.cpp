#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pcap::common {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.cell("x").cell(std::int64_t{42});
  w.end_row();
  EXPECT_EQ(out.str(), "a,b\nx,42\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out, {"v"});
  w.cell("has,comma");
  w.end_row();
  w.cell("has\"quote");
  w.end_row();
  w.cell("has\nnewline");
  w.end_row();
  EXPECT_EQ(out.str(),
            "v\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriter, DoubleFormatting) {
  std::ostringstream out;
  CsvWriter w(out, {"v"});
  w.cell(3.5);
  w.end_row();
  EXPECT_EQ(out.str(), "v\n3.5\n");
}

TEST(CsvWriter, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.cell("only one");
  EXPECT_THROW(w.end_row(), std::logic_error);
}

TEST(CsvWriter, EmptyHeaderThrows) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), std::logic_error);
}

TEST(ParseCsv, Simple) {
  const auto rows = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"3", "4"}));
}

TEST(ParseCsv, QuotedFields) {
  const auto rows = parse_csv("\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x,y");
  EXPECT_EQ(rows[0][1], "he said \"hi\"");
}

TEST(ParseCsv, CarriageReturnsStripped) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(ParseCsv, MissingTrailingNewline) {
  const auto rows = parse_csv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(ParseCsv, EmptyTextGivesNoRows) {
  EXPECT_TRUE(parse_csv("").empty());
}

TEST(ParseCsv, EmptyFieldsPreserved) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter w(out, {"name", "value"});
  w.cell("plain").cell(1.25);
  w.end_row();
  w.cell("with,comma").cell(-3.0);
  w.end_row();
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0], "plain");
  EXPECT_EQ(rows[2][0], "with,comma");
  EXPECT_EQ(rows[2][1], "-3");
}

}  // namespace
}  // namespace pcap::common
