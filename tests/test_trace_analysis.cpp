#include "metrics/trace_analysis.hpp"

#include <gtest/gtest.h>

namespace pcap::metrics {
namespace {

PowerTrace trace(std::vector<double> watts, double dt = 1.0) {
  PowerTrace t;
  t.dt = Seconds{dt};
  t.watts = std::move(watts);
  return t;
}

TEST(Excursions, NoneWhenAlwaysBelow) {
  EXPECT_TRUE(find_excursions(trace({1.0, 2.0, 3.0}), Watts{5.0}).empty());
}

TEST(Excursions, SingleSpike) {
  const auto ex = find_excursions(trace({1.0, 6.0, 7.0, 2.0}), Watts{5.0});
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].start, 1u);
  EXPECT_EQ(ex[0].length, 2u);
  EXPECT_DOUBLE_EQ(ex[0].peak_w, 7.0);
  EXPECT_DOUBLE_EQ(ex[0].area_js, 1.0 + 2.0);
}

TEST(Excursions, MultipleSpikes) {
  const auto ex =
      find_excursions(trace({6.0, 1.0, 6.0, 6.0, 1.0, 8.0}), Watts{5.0});
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_EQ(ex[0].start, 0u);
  EXPECT_EQ(ex[1].length, 2u);
  EXPECT_EQ(ex[2].start, 5u);
}

TEST(Excursions, OpenEndedSpikeCloses) {
  const auto ex = find_excursions(trace({1.0, 9.0, 9.0}), Watts{5.0});
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].length, 2u);
}

TEST(Excursions, ExactlyAtThresholdNotAbove) {
  EXPECT_TRUE(find_excursions(trace({5.0, 5.0}), Watts{5.0}).empty());
}

TEST(Excursions, DurationUsesDt) {
  const auto ex = find_excursions(trace({6.0, 6.0}, 4.0), Watts{5.0});
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_DOUBLE_EQ(ex[0].duration_s(Seconds{4.0}), 8.0);
}

TEST(ExcursionStats, Aggregates) {
  const ExcursionStats s = summarize_excursions(
      trace({6.0, 1.0, 7.0, 7.0, 1.0}), Watts{5.0});
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.total_time_s, 3.0);
  EXPECT_DOUBLE_EQ(s.mean_duration_s, 1.5);
  EXPECT_DOUBLE_EQ(s.max_duration_s, 2.0);
  EXPECT_DOUBLE_EQ(s.max_peak_w, 7.0);
  EXPECT_DOUBLE_EQ(s.mean_peak_w, 6.5);
  EXPECT_DOUBLE_EQ(s.total_overspend_j, 1.0 + 4.0);
}

TEST(ExcursionStats, EmptyTrace) {
  const ExcursionStats s = summarize_excursions(trace({}), Watts{5.0});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.total_time_s, 0.0);
}

std::vector<CyclePoint> states(std::vector<int> seq) {
  std::vector<CyclePoint> out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    CyclePoint p;
    p.time_s = static_cast<double>(i);
    p.state = seq[i];
    out.push_back(p);
  }
  return out;
}

TEST(Episodes, SegmentsByState) {
  const auto eps = find_episodes(states({0, 0, 1, 1, 1, 0, 2}));
  ASSERT_EQ(eps.size(), 4u);
  EXPECT_EQ(eps[0].state, 0);
  EXPECT_EQ(eps[0].length, 2u);
  EXPECT_EQ(eps[1].state, 1);
  EXPECT_EQ(eps[1].length, 3u);
  EXPECT_EQ(eps[3].state, 2);
}

TEST(Episodes, EmptyInput) {
  EXPECT_TRUE(find_episodes({}).empty());
}

TEST(EpisodeStats, PerState) {
  const auto pts = states({1, 0, 1, 1, 0, 1, 1, 1});
  const EpisodeStats y = summarize_episodes(pts, 1);
  EXPECT_EQ(y.count, 3u);
  EXPECT_DOUBLE_EQ(y.mean_length, 2.0);
  EXPECT_EQ(y.max_length, 3u);
  const EpisodeStats g = summarize_episodes(pts, 0);
  EXPECT_EQ(g.count, 2u);
  const EpisodeStats r = summarize_episodes(pts, 2);
  EXPECT_EQ(r.count, 0u);
}

TEST(Oscillations, CountsQuickYellowReentries) {
  // yellow at 0, green 1-2, yellow 3 (gap 2), green 4-9, yellow 10 (gap 6)
  const auto pts = states({1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1});
  EXPECT_EQ(count_rethrottle_oscillations(pts, 3), 1u);
  EXPECT_EQ(count_rethrottle_oscillations(pts, 10), 2u);
  EXPECT_EQ(count_rethrottle_oscillations(pts, 1), 0u);
}

TEST(Oscillations, NoYellowNoOscillation) {
  EXPECT_EQ(count_rethrottle_oscillations(states({0, 0, 0}), 5), 0u);
}

}  // namespace
}  // namespace pcap::metrics
