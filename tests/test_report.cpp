#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace pcap::metrics {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.cell("x").cell(std::int64_t{42});
  t.end_row();
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.cell("longvalue").cell("x");
  t.end_row();
  t.cell("s").cell("y");
  t.end_row();
  const std::string out = t.to_string();
  // Column b starts at the same offset in both data lines.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      lines.push_back(out.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('x'), lines[3].find('y'));
}

TEST(Table, DoublePrecision) {
  Table t({"v"});
  t.cell(3.14159, 2);
  t.end_row();
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, PercentFormatting) {
  Table t({"v"});
  t.cell_percent(0.0213);
  t.end_row();
  EXPECT_NE(t.to_string().find("2.13%"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  t.cell("only");
  EXPECT_THROW(t.end_row(), std::logic_error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowsCounter) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.cell("1");
  t.end_row();
  t.cell("2");
  t.end_row();
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NoTrailingSpaces) {
  Table t({"a", "b"});
  t.cell("x").cell("y");
  t.end_row();
  // Keep the rendered string alive for the whole scan: iterating over the
  // c_str() of a temporary reads freed memory.
  const std::string rendered = t.to_string();
  for (const char* line = rendered.c_str(); *line != '\0';) {
    const char* nl = line;
    while (*nl != '\0' && *nl != '\n') ++nl;
    if (nl > line) EXPECT_NE(*(nl - 1), ' ');
    line = *nl == '\0' ? nl : nl + 1;
  }
}

}  // namespace
}  // namespace pcap::metrics
