#include "hw/power_model.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "hw/node_spec.hpp"

namespace pcap::hw {
namespace {

using namespace pcap::literals;

DevicePowerTable simple_table() {
  // Two levels with easily checkable numbers.
  DevicePowerTable t;
  t.idle = {Watts{100.0}, Watts{140.0}};
  t.cpu_dyn = {Watts{60.0}, Watts{190.0}};
  t.mem_dyn = {Watts{60.0}, Watts{60.0}};
  t.nic_dyn = {Watts{25.0}, Watts{25.0}};
  return t;
}

OperatingPoint op_full() {
  OperatingPoint op;
  op.cpu_utilization = 1.0;
  op.mem_used = Bytes{48.0};
  op.mem_total = Bytes{48.0};
  op.nic_bytes = Bytes{5e9};
  op.tau = Seconds{1.0};
  op.nic_bandwidth = 5e9;
  return op;
}

TEST(PowerModel, Formula1AtFullLoad) {
  const PowerModel m(simple_table());
  // P = idle + 1*cpu + 1*mem + 1*nic at the top level.
  EXPECT_DOUBLE_EQ(m.power(1, op_full()).value(), 140.0 + 190.0 + 60.0 + 25.0);
  EXPECT_DOUBLE_EQ(m.power(0, op_full()).value(), 100.0 + 60.0 + 60.0 + 25.0);
}

TEST(PowerModel, Formula1Idle) {
  const PowerModel m(simple_table());
  OperatingPoint op;
  op.mem_total = Bytes{48.0};
  op.nic_bandwidth = 5e9;
  EXPECT_DOUBLE_EQ(m.power(1, op).value(), 140.0);
}

TEST(PowerModel, Formula1PartialTerms) {
  const PowerModel m(simple_table());
  OperatingPoint op = op_full();
  op.cpu_utilization = 0.5;
  op.mem_used = Bytes{24.0};       // half the memory
  op.nic_bytes = Bytes{2.5e9};     // half the link
  EXPECT_DOUBLE_EQ(m.power(1, op).value(),
                   140.0 + 0.5 * 190.0 + 0.5 * 60.0 + 0.5 * 25.0);
}

TEST(PowerModel, NicFractionUsesTauTimesBandwidth) {
  OperatingPoint op = op_full();
  op.tau = Seconds{2.0};
  op.nic_bytes = Bytes{5e9};  // half of 2 s * 5e9 B/s
  EXPECT_DOUBLE_EQ(op.nic_fraction(), 0.5);
}

TEST(PowerModel, FractionsClampToOne) {
  const PowerModel m(simple_table());
  OperatingPoint op = op_full();
  op.cpu_utilization = 1.7;
  op.mem_used = Bytes{500.0};
  op.nic_bytes = Bytes{1e12};
  EXPECT_DOUBLE_EQ(m.power(1, op).value(), 140.0 + 190.0 + 60.0 + 25.0);
}

TEST(PowerModel, NegativeUtilizationClampsToZero) {
  const PowerModel m(simple_table());
  OperatingPoint op;
  op.cpu_utilization = -0.5;
  op.mem_total = Bytes{48.0};
  op.nic_bandwidth = 5e9;
  EXPECT_DOUBLE_EQ(m.power(1, op).value(), 140.0);
}

TEST(PowerModel, BadLevelThrows) {
  const PowerModel m(simple_table());
  EXPECT_THROW((void)m.power(2, op_full()), std::out_of_range);
  EXPECT_THROW((void)m.power(-1, op_full()), std::out_of_range);
  EXPECT_THROW((void)m.idle_power(5), std::out_of_range);
}

TEST(PowerModel, TheoreticalMax) {
  const PowerModel m(simple_table());
  EXPECT_DOUBLE_EQ(m.theoretical_max().value(), 140.0 + 190.0 + 60.0 + 25.0);
}

TEST(PowerModel, PowerAtEqualsPowerAtSameLevel) {
  const PowerModel m(simple_table());
  EXPECT_EQ(m.power_at(0, op_full()), m.power(0, op_full()));
}

TEST(DevicePowerTable, ValidateCatchesRagged) {
  DevicePowerTable t = simple_table();
  t.mem_dyn.pop_back();
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(DevicePowerTable, ValidateCatchesNegative) {
  DevicePowerTable t = simple_table();
  t.cpu_dyn[0] = Watts{-1.0};
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(DevicePowerTable, ValidateCatchesEmpty) {
  DevicePowerTable t;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(MakeScaledTable, DepthMatchesLadder) {
  const DvfsLadder ladder = DvfsLadder::xeon_x5670();
  const DevicePowerTable t =
      make_scaled_table(ladder, 95_W, 45_W, 190_W, 60_W, 25_W);
  EXPECT_EQ(t.num_levels(), ladder.num_levels());
}

TEST(MakeScaledTable, CpuDynFollowsPowerScale) {
  const DvfsLadder ladder = DvfsLadder::xeon_x5670();
  const DevicePowerTable t =
      make_scaled_table(ladder, 95_W, 45_W, 190_W, 60_W, 25_W);
  for (Level l = 0; l < ladder.num_levels(); ++l) {
    EXPECT_NEAR(t.cpu_dyn[static_cast<std::size_t>(l)].value(),
                190.0 * ladder.power_scale(l), 1e-9);
  }
}

TEST(MakeScaledTable, MemAndNicLevelIndependent) {
  const DvfsLadder ladder = DvfsLadder::xeon_x5670();
  const DevicePowerTable t =
      make_scaled_table(ladder, 95_W, 45_W, 190_W, 60_W, 25_W);
  for (Level l = 0; l < ladder.num_levels(); ++l) {
    EXPECT_DOUBLE_EQ(t.mem_dyn[static_cast<std::size_t>(l)].value(), 60.0);
    EXPECT_DOUBLE_EQ(t.nic_dyn[static_cast<std::size_t>(l)].value(), 25.0);
  }
}

// Property sweep over (level, utilisation): power is monotone both in the
// DVFS level and in the CPU utilisation — formula (1) must never reward
// running faster with less power.
class PowerMonotone
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PowerMonotone, IncreasingInLevelAndUtilization) {
  const auto spec = tianhe1a_node_spec();
  const PowerModel& m = spec->power_model;
  const auto [level, uti] = GetParam();
  OperatingPoint op = op_full();
  op.cpu_utilization = uti;

  if (level + 1 < m.num_levels()) {
    EXPECT_LE(m.power(level, op), m.power(level + 1, op));
  }
  OperatingPoint hotter = op;
  hotter.cpu_utilization = uti + 0.1;
  EXPECT_LE(m.power(level, op), m.power(level, hotter));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PowerMonotone,
    ::testing::Combine(::testing::Values(0, 2, 4, 6, 8, 9),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9)));

TEST(TianheSpec, PowerEnvelopeIsPlausible) {
  const auto spec = tianhe1a_node_spec();
  const PowerModel& m = spec->power_model;
  // Idle at top level ~140 W; flat out ~415 W; floor-level full load in
  // between — the envelope a dual-X5670 board actually has.
  EXPECT_NEAR(m.idle_power(9).value(), 140.0, 5.0);
  EXPECT_NEAR(m.theoretical_max().value(), 415.0, 10.0);
  EXPECT_LT(m.power(0, op_full()), m.power(9, op_full()));
  EXPECT_GT(m.power(0, op_full()).value(), 200.0);
}

}  // namespace
}  // namespace pcap::hw
