#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "cluster/scenario.hpp"
#include "hw/node_spec.hpp"
#include "power/policy_registry.hpp"

namespace pcap::cluster {
namespace {

ClusterConfig small_config(std::uint64_t seed = 7) {
  ClusterConfig cfg = small_scenario(seed).cluster;
  cfg.num_nodes = 8;
  return cfg;
}

TEST(Cluster, BuildsRequestedNodes) {
  Cluster c(small_config());
  EXPECT_EQ(c.nodes().size(), 8u);
  EXPECT_EQ(c.scheduler().total_nodes(), 8);
  EXPECT_EQ(c.now(), Seconds{0.0});
}

TEST(Cluster, TheoreticalPeakSumsNodeMaxima) {
  Cluster c(small_config());
  const double per_node =
      hw::tianhe1a_node_spec()->power_model.theoretical_max().value();
  EXPECT_NEAR(c.theoretical_peak().value(),
              8.0 * per_node / c.config().meter.psu_efficiency, 1e-6);
}

TEST(Cluster, AutoGeneratesJobsWhenQueueEmpty) {
  Cluster c(small_config());
  c.run(Seconds{60.0});
  EXPECT_GT(c.scheduler().running_count() + c.scheduler().queue_length(), 0u);
  EXPECT_FALSE(c.generated_trace().empty());
}

TEST(Cluster, PowerReadingIsPlausible) {
  Cluster c(small_config());
  c.run(Seconds{300.0});
  // 8 nodes: between 8x idle floor and the theoretical peak.
  EXPECT_GT(c.last_power().value(), 8.0 * 80.0);
  EXPECT_LT(c.last_power(), c.theoretical_peak());
}

TEST(Cluster, RecordingCapturesEveryTick) {
  Cluster c(small_config());
  c.start_recording();
  c.run(Seconds{120.0});
  EXPECT_EQ(c.recorder().size(), 120u);
}

TEST(Cluster, RecorderBeforeStartThrows) {
  Cluster c(small_config());
  EXPECT_THROW((void)c.recorder(), std::logic_error);
}

TEST(Cluster, DeterministicForSameSeed) {
  Cluster a(small_config(11));
  Cluster b(small_config(11));
  a.start_recording();
  b.start_recording();
  a.run(Seconds{600.0});
  b.run(Seconds{600.0});
  ASSERT_EQ(a.recorder().size(), b.recorder().size());
  for (std::size_t i = 0; i < a.recorder().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.recorder().points()[i].power_w,
                     b.recorder().points()[i].power_w);
  }
}

TEST(Cluster, DifferentSeedsDiverge) {
  Cluster a(small_config(1));
  Cluster b(small_config(2));
  a.start_recording();
  b.start_recording();
  a.run(Seconds{600.0});
  b.run(Seconds{600.0});
  bool differs = false;
  for (std::size_t i = 0; i < a.recorder().size(); ++i) {
    if (a.recorder().points()[i].power_w !=
        b.recorder().points()[i].power_w) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Cluster, JobsEventuallyFinish) {
  ClusterConfig cfg = small_config();
  Cluster c(cfg);
  c.start_recording();
  c.run(Seconds{4.0 * 3600.0});
  EXPECT_GT(c.scheduler().finished_count(), 0u);
  EXPECT_FALSE(c.finished_records().empty());
}

TEST(Cluster, UncappedJobsMatchBaselineDuration) {
  ClusterConfig cfg = small_config();
  Cluster c(cfg);  // default NoCappingManager
  c.start_recording();
  c.run(Seconds{4.0 * 3600.0});
  ASSERT_FALSE(c.finished_records().empty());
  for (const auto& r : c.finished_records()) {
    EXPECT_NEAR(r.actual_s, r.baseline_s, r.baseline_s * 0.005 + 2.0)
        << "job " << r.id << " (" << r.app << ")";
  }
}

TEST(Cluster, JobEnergyAttributionIsPlausible) {
  ClusterConfig cfg = small_config();
  Cluster c(cfg);
  c.start_recording();
  c.run(Seconds{4.0 * 3600.0});
  ASSERT_FALSE(c.finished_records().empty());
  for (const auto& r : c.finished_records()) {
    // Energy is bounded by (node count x node max power x duration) above
    // and by (node count x idle floor x duration) below.
    const double dur = r.actual_s;
    const int nodes = (r.nprocs + 2) / 3;  // 3 ranks per node placement
    EXPECT_GT(r.energy_j, dur * 80.0) << "job " << r.id;
    EXPECT_LT(r.energy_j, dur * 450.0 * nodes) << "job " << r.id;
  }
}

TEST(Cluster, TraceReplayReproducesWorkload) {
  ClusterConfig cfg = small_config(23);
  Cluster original(cfg);
  original.run(Seconds{1800.0});
  const workload::WorkloadTrace trace = original.generated_trace();
  ASSERT_FALSE(trace.empty());

  ClusterConfig replay_cfg = cfg;
  replay_cfg.auto_generate_jobs = false;
  Cluster replay(replay_cfg);
  replay.load_trace(trace);
  replay.run(Seconds{1800.0});
  // Same jobs were submitted (modulo those not yet submitted at cutoff).
  EXPECT_EQ(replay.generated_trace().size(), trace.size());
  EXPECT_GT(replay.scheduler().running_count() +
                replay.scheduler().finished_count(),
            0u);
}

TEST(Cluster, ManagerSwapTakesEffect) {
  ClusterConfig cfg = small_config();
  Cluster c(cfg);
  c.set_manager(std::make_unique<power::NoCappingManager>());
  EXPECT_EQ(c.manager().name(), "none");
  EXPECT_THROW(c.set_manager(nullptr), std::invalid_argument);
}

TEST(Cluster, ControllableNodesListsAll) {
  Cluster c(small_config());
  EXPECT_EQ(c.controllable_nodes().size(), 8u);
}

TEST(Cluster, MixedControllabilityFiltersPrivileged) {
  ClusterConfig cfg = small_config();
  cfg.num_nodes = 0;
  cfg.node_specs = {hw::tianhe1a_node_spec(), hw::uncontrollable_node_spec(),
                    hw::tianhe1a_node_spec()};
  Cluster c(cfg);
  const auto ids = c.controllable_nodes();
  EXPECT_EQ(ids, (std::vector<hw::NodeId>{0, 2}));
}

TEST(Cluster, HeterogeneousClusterRuns) {
  ExperimentConfig cfg = heterogeneous_scenario(5);
  Cluster c(cfg.cluster);
  c.start_recording();
  c.run(Seconds{1800.0});
  EXPECT_EQ(c.nodes().size(), 24u);
  EXPECT_GT(c.last_power().value(), 0.0);
}

TEST(Cluster, BadConfigThrows) {
  ClusterConfig cfg = small_config();
  cfg.tick = Seconds{0.0};
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);

  cfg = small_config();
  cfg.num_nodes = 0;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);

  cfg = small_config();
  cfg.control_period = Seconds{0.5};  // shorter than the 1 s tick
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
}

TEST(Cluster, ClearRecordingResets) {
  Cluster c(small_config());
  c.start_recording();
  c.run(Seconds{60.0});
  EXPECT_GT(c.recorder().size(), 0u);
  c.clear_recording();
  EXPECT_EQ(c.recorder().size(), 0u);
  EXPECT_TRUE(c.finished_records().empty());
}

}  // namespace
}  // namespace pcap::cluster
